"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_caches(tmp_path_factory):
    """Keep the suite hermetic: private result-cache dir, serial runs.

    The persistent cache goes to a session tmp dir (never the user's
    ``~/.cache/repro``) and worker fan-out defaults to serial so test
    timings stay stable; parallel behaviour is exercised explicitly in
    ``tests/experiments/test_parallel.py``.
    """
    import os

    cache_dir = tmp_path_factory.mktemp("repro-cache")
    old_dir = os.environ.get("REPRO_CACHE_DIR")
    old_jobs = os.environ.get("REPRO_JOBS")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    os.environ.setdefault("REPRO_JOBS", "1")
    yield
    if old_dir is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old_dir
    if old_jobs is None:
        os.environ.pop("REPRO_JOBS", None)
    else:
        os.environ["REPRO_JOBS"] = old_jobs

from repro.hardware.machines import machine_a, machine_b
from repro.hardware.topology import NumaNode, NumaTopology
from repro.experiments.runner import RunSettings, run_benchmark
from repro.vm.frame_allocator import PhysicalMemory

GIB = 1024**3


@pytest.fixture
def tiny_topo() -> NumaTopology:
    """A 2-node, 4-core machine for fast unit tests."""
    nodes = [NumaNode(node_id=i, n_cores=2, dram_bytes=2 * GIB) for i in range(2)]
    hops = np.array([[0, 1], [1, 0]])
    return NumaTopology(name="tiny", nodes=nodes, hop_matrix=hops, cpu_freq_hz=2e9)


@pytest.fixture
def quad_topo() -> NumaTopology:
    """A 4-node, 8-core machine for unit tests needing >2 nodes."""
    nodes = [NumaNode(node_id=i, n_cores=2, dram_bytes=2 * GIB) for i in range(4)]
    hops = np.array(
        [
            [0, 1, 1, 2],
            [1, 0, 2, 1],
            [1, 2, 0, 1],
            [2, 1, 1, 0],
        ]
    )
    return NumaTopology(name="quad", nodes=nodes, hop_matrix=hops, cpu_freq_hz=2e9)


@pytest.fixture
def tiny_phys(tiny_topo) -> PhysicalMemory:
    """Physical memory for the tiny machine."""
    return PhysicalMemory.for_topology(tiny_topo)


@pytest.fixture(scope="session")
def machine_a_topo() -> NumaTopology:
    """The paper's machine A (session-cached)."""
    return machine_a()


@pytest.fixture(scope="session")
def machine_b_topo() -> NumaTopology:
    """The paper's machine B (session-cached)."""
    return machine_b()


@pytest.fixture(scope="session")
def quick_settings() -> RunSettings:
    """Reduced-cost run settings shared across integration tests.

    Runs are memoised process-wide by the runner, so every test that
    asks for the same (workload, machine, policy) reuses one simulation.
    """
    return RunSettings.quick(seed=0)


@pytest.fixture(scope="session")
def run(quick_settings):
    """Callable fixture: run (workload, machine, policy) with caching."""

    def _run(workload: str, machine: str, policy: str, **kwargs):
        return run_benchmark(workload, machine, policy, quick_settings, **kwargs)

    return _run
