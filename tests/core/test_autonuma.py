"""Tests for the AutoNUMA (Linux NUMA balancing) baseline policy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.core.autonuma import AutoNumaConfig, AutoNumaPolicy
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation, apply_decisions
from repro.sim.policy import LinuxPolicy
from repro.vm.address_space import BACKING_ID_2M_OFFSET
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import SharedRegion

MIB = 1 << 20


def make_sim(topo, thp=True):
    cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e6, dram_accesses=1e5)
    inst = WorkloadInstance(
        "toy", topo, [SharedRegion("s", 8 * MIB, 1.0)], cost, total_epochs=2
    )
    sim = Simulation(topo, inst, LinuxPolicy(thp), SimConfig(stream_length=256))
    nodes = topo.core_to_node[: inst.n_threads].astype(np.int64)
    inst.premap_epoch(0, sim.asp, nodes, thp)
    return sim


def samples_for(sim, granules, nodes):
    n = len(granules)
    return IbsSamples(
        granule=np.asarray(granules, dtype=np.int64),
        accessing_node=np.asarray(nodes, dtype=np.int8),
        home_node=sim.asp.home_nodes(np.asarray(granules, dtype=np.int64)),
        thread=np.zeros(n, dtype=np.int16),
        from_dram=np.ones(n, dtype=bool),
    )


class TestConfig:
    def test_defaults(self):
        AutoNumaConfig()

    def test_invalid_streak(self):
        with pytest.raises(ConfigurationError):
            AutoNumaConfig(migrate_streak=0)

    def test_invalid_cost(self):
        with pytest.raises(ConfigurationError):
            AutoNumaConfig(hint_fault_cost_s=-1)

    def test_names(self):
        assert AutoNumaPolicy(thp=True).name == "autonuma"
        assert AutoNumaPolicy(thp=False).name == "autonuma-4k"


class TestTwoStageFilter:
    def test_single_fault_does_not_migrate(self, tiny_topo):
        sim = make_sim(tiny_topo)
        policy = AutoNumaPolicy()
        region = sim.instance.regions[0]
        window = CounterBank(2, 4)
        summary, _ = apply_decisions(
            sim, policy.decide(sim, samples_for(sim, [region.lo], [1]), window)
        )
        assert summary.migrated_2m == 0

    def test_second_consecutive_fault_migrates(self, tiny_topo):
        sim = make_sim(tiny_topo)
        policy = AutoNumaPolicy()
        region = sim.instance.regions[0]
        window = CounterBank(2, 4)
        chunk = region.lo // 512
        target_node = 1 - sim.asp.node_of_backing(BACKING_ID_2M_OFFSET + chunk)
        for _ in range(2):
            summary, _ = apply_decisions(
                sim,
                policy.decide(
                    sim, samples_for(sim, [region.lo], [target_node]), window
                ),
            )
        assert sim.asp.node_of_backing(BACKING_ID_2M_OFFSET + chunk) == target_node
        assert summary.migrated_2m == 1

    def test_alternating_nodes_never_migrate(self, tiny_topo):
        sim = make_sim(tiny_topo)
        policy = AutoNumaPolicy()
        region = sim.instance.regions[0]
        window = CounterBank(2, 4)
        chunk = region.lo // 512
        home = sim.asp.node_of_backing(BACKING_ID_2M_OFFSET + chunk)
        moved = 0
        for node in (0, 1, 0, 1):
            # One page, many samples per interval, dominant node flips.
            summary, _ = apply_decisions(
                sim,
                policy.decide(
                    sim, samples_for(sim, [region.lo] * 4, [node] * 4), window
                ),
            )
            moved += summary.migrated_2m
        # Streak resets on every flip: at most the first settle.
        assert sim.asp.node_of_backing(BACKING_ID_2M_OFFSET + chunk) in (0, 1, home)
        assert moved <= 1

    def test_hint_fault_overhead_scales(self, tiny_topo):
        sim = make_sim(tiny_topo)
        policy = AutoNumaPolicy()
        region = sim.instance.regions[0]
        window = CounterBank(2, 4)
        small, _ = apply_decisions(
            sim, policy.decide(sim, samples_for(sim, [region.lo], [0]), window)
        )
        big, _ = apply_decisions(
            sim,
            policy.decide(
                sim, samples_for(sim, [region.lo] * 100, [0] * 100), window
            ),
        )
        assert big.compute_s > small.compute_s

    def test_empty_samples(self, tiny_topo):
        sim = make_sim(tiny_topo)
        policy = AutoNumaPolicy()
        summary, _ = apply_decisions(
            sim, policy.decide(sim, IbsSamples.empty(), CounterBank(2, 4))
        )
        assert summary.bytes_migrated == 0


class TestEndToEnd:
    def test_autonuma_cannot_split(self, run):
        result = run("CG.D", "B", "autonuma")
        m = result.metrics()
        assert m.pages_split_2m == 0
        # The hot pages survive the whole run.
        assert m.n_hot_pages >= 2

    def test_autonuma_fixes_master_init(self, run):
        base = run("pca", "B", "linux-4k")
        auto = run("pca", "B", "autonuma")
        assert auto.improvement_over(base) > 20.0

    def test_autonuma_loses_to_lp_on_cg(self, run):
        base = run("CG.D", "B", "linux-4k")
        auto = run("CG.D", "B", "autonuma").improvement_over(base)
        lp = run("CG.D", "B", "carrefour-lp").improvement_over(base)
        assert lp > auto + 10.0
