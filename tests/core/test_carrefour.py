"""Tests for the Carrefour placement engine."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank, EpochCounters
from repro.hardware.ibs import IbsSamples
from repro.core.carrefour import CarrefourConfig, CarrefourEngine
from repro.core.metrics import PageSampleTable
from repro.sim.engine import apply_decisions
from repro.vm.address_space import (
    AddressSpace,
    BACKING_ID_2M_OFFSET,
    split_backing_page,
)
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, PAGE_2M
from repro.vm.thp import ThpState

GIB = 1 << 30


def make_asp(n_chunks=4, n_nodes=2, huge=False):
    phys = PhysicalMemory([GIB] * n_nodes)
    asp = AddressSpace(n_chunks * GRANULES_PER_2M, phys)
    if huge:
        asp.premap_pattern_2m(0, np.zeros(n_chunks, dtype=np.int8))
    return asp


def place(engine, table, asp, n_nodes):
    """Drive the engine's placement decider against a bare address space."""
    host = SimpleNamespace(
        asp=asp, thp=ThpState(), machine=SimpleNamespace(n_nodes=n_nodes)
    )
    summary, _ = apply_decisions(
        host, engine.decide_placement(table, asp, n_nodes)
    )
    return summary


def make_table(asp, granules, nodes, n_nodes=2, granularity="backing"):
    n = len(granules)
    samples = IbsSamples(
        granule=np.asarray(granules, dtype=np.int64),
        accessing_node=np.asarray(nodes, dtype=np.int8),
        home_node=np.zeros(n, dtype=np.int8),
        thread=np.zeros(n, dtype=np.int16),
        from_dram=np.ones(n, dtype=bool),
    )
    return PageSampleTable.from_samples(samples, asp, n_nodes, granularity)


def window_with(lar_traffic, n_nodes=2, maptu_misses=1e9):
    bank = CounterBank(n_nodes, 4)
    bank.add(
        EpochCounters(
            epoch=0,
            duration_s=1.0,
            traffic=np.asarray(lar_traffic, dtype=float),
            l2_data_misses=maptu_misses,
        )
    )
    return bank


class TestConfig:
    def test_invalid_min_samples(self):
        with pytest.raises(ConfigurationError):
            CarrefourConfig(min_samples_per_page=0)

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            CarrefourConfig(max_migration_bytes_per_interval=-1)


class TestShouldEngage:
    def test_low_maptu_disables(self):
        engine = CarrefourEngine()
        window = window_with([[1, 9], [9, 1]], maptu_misses=1.0)
        assert not engine.should_engage(window)

    def test_low_lar_engages(self):
        engine = CarrefourEngine()
        window = window_with([[1, 9], [9, 1]])  # LAR 10%
        assert engine.should_engage(window)

    def test_high_imbalance_engages(self):
        engine = CarrefourEngine()
        window = window_with([[18, 0], [2, 0]])  # all to node 0
        assert engine.should_engage(window)

    def test_healthy_app_left_alone(self):
        engine = CarrefourEngine()
        window = window_with([[10, 1], [1, 10]])  # LAR ~91%, balanced
        assert not engine.should_engage(window)


class TestPlacement:
    def test_single_node_page_migrates_local(self):
        asp = make_asp(huge=True)
        engine = CarrefourEngine()
        table = make_table(asp, [0, 0], [1, 1])
        summary = place(engine, table, asp, 2)
        assert summary.migrated_2m == 1
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1

    def test_shared_page_interleaves_once(self):
        asp = make_asp(huge=True)
        engine = CarrefourEngine()
        table = make_table(asp, [0, 1], [0, 1])
        place(engine, table, asp, 2)
        node_after = asp.node_of_backing(BACKING_ID_2M_OFFSET)
        # A second interval must not re-randomise the interleaved page.
        table2 = make_table(asp, [0, 1], [0, 1])
        summary2 = place(engine, table2, asp, 2)
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET) == node_after
        assert summary2.bytes_migrated <= PAGE_2M  # at most settles once

    def test_page_already_local_is_free(self):
        asp = make_asp(huge=True)
        engine = CarrefourEngine()
        table = make_table(asp, [0], [0])
        summary = place(engine, table, asp, 2)
        assert summary.bytes_migrated == 0

    def test_min_samples_filter(self):
        asp = make_asp(huge=True)
        engine = CarrefourEngine(CarrefourConfig(min_samples_per_page=3))
        table = make_table(asp, [0, 0], [1, 1])
        summary = place(engine, table, asp, 2)
        assert summary.migrated_2m == 0

    def test_migration_budget_respected(self):
        asp = make_asp(n_chunks=4, huge=True)
        engine = CarrefourEngine(
            CarrefourConfig(max_migration_bytes_per_interval=PAGE_2M)
        )
        granules = [0, 0, 512, 512, 1024, 1024]
        table = make_table(asp, granules, [1] * 6)
        summary = place(engine, table, asp, 2)
        assert summary.migrated_2m == 1
        assert any("budget" in note for note in summary.notes)

    def test_hottest_pages_first_under_budget(self):
        asp = make_asp(n_chunks=4, huge=True)
        engine = CarrefourEngine(
            CarrefourConfig(max_migration_bytes_per_interval=PAGE_2M)
        )
        # Chunk 1 has 3 samples, chunk 0 has 2: chunk 1 moves first.
        table = make_table(asp, [0, 0, 512, 512, 512], [1] * 5)
        place(engine, table, asp, 2)
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET + 1) == 1
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET) == 0

    def test_stale_ids_skipped(self):
        asp = make_asp(huge=True)
        engine = CarrefourEngine()
        table = make_table(asp, [0, 0], [1, 1])
        asp.split_chunk(0)  # table id now stale
        summary = place(engine, table, asp, 2)
        assert summary.migrated_2m == 0

    def test_compute_cost_scales_with_samples(self):
        asp = make_asp(huge=True)
        engine = CarrefourEngine()
        small = place(engine, make_table(asp, [0], [0]), asp, 2)
        big = place(engine, make_table(asp, [0] * 100, [0] * 100), asp, 2)
        assert big.compute_s > small.compute_s

    def test_empty_table(self):
        asp = make_asp()
        engine = CarrefourEngine()
        table = make_table(asp, [], [])
        summary = place(engine, table, asp, 2)
        assert summary.bytes_migrated == 0


class TestSplitBackingPage:
    def test_split_2m(self):
        asp = make_asp(huge=True)
        assert split_backing_page(asp, BACKING_ID_2M_OFFSET) == 1
        assert not asp.huge[0]

    def test_split_4k_is_noop(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        assert split_backing_page(asp, 0) == 0

    def test_split_1g(self):
        from repro.vm.address_space import BACKING_ID_1G_OFFSET
        from repro.vm.layout import GRANULES_PER_1G

        phys = PhysicalMemory([4 * GIB, 4 * GIB])
        asp = AddressSpace(GRANULES_PER_1G, phys)
        asp.map_range_1g(0, GRANULES_PER_1G, node=0)
        assert split_backing_page(asp, BACKING_ID_1G_OFFSET) == 512
        assert not asp.giga[0]
