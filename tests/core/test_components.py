"""Tests for the conservative and reactive components and Algorithm 1."""

import numpy as np
import pytest

from repro.hardware.counters import CounterBank, EpochCounters
from repro.hardware.ibs import IbsSamples
from repro.core.carrefour_lp import CarrefourLpPolicy
from repro.core.conservative import ConservativeComponent, ConservativeConfig
from repro.core.reactive import ReactiveComponent, ReactiveConfig
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation, apply_decisions
from repro.sim.policy import LinuxPolicy
from repro.vm.layout import GRANULES_PER_2M, PageSize
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import SharedRegion

MIB = 1 << 20


def make_sim(topo, thp=True, epochs=2):
    cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e6, dram_accesses=1e5)
    inst = WorkloadInstance(
        "toy", topo, [SharedRegion("s", 8 * MIB, 1.0)], cost, total_epochs=epochs
    )
    sim = Simulation(topo, inst, LinuxPolicy(thp), SimConfig(stream_length=256))
    # Materialise the address space so components have pages to act on.
    nodes = topo.core_to_node[: inst.n_threads].astype(np.int64)
    inst.premap_epoch(0, sim.asp, nodes, thp)
    return sim


def window(n_nodes, n_cores, walk_l2=0.0, data=100.0, fault_core_s=0.0, duration=1.0):
    bank = CounterBank(n_nodes, n_cores)
    fault = np.zeros(n_cores)
    fault[0] = fault_core_s
    bank.add(
        EpochCounters(
            epoch=0,
            duration_s=duration,
            traffic=np.zeros((n_nodes, n_nodes)),
            walk_l2_misses=walk_l2,
            l2_data_misses=data,
            fault_time_per_core_s=fault,
        )
    )
    return bank


def samples_for(sim, granules, nodes, threads=None):
    n = len(granules)
    return IbsSamples(
        granule=np.asarray(granules, dtype=np.int64),
        accessing_node=np.asarray(nodes, dtype=np.int8),
        home_node=sim.asp.home_nodes(np.asarray(granules, dtype=np.int64)),
        thread=np.asarray(threads if threads is not None else nodes, dtype=np.int16),
        from_dram=np.ones(n, dtype=bool),
    )


class TestConservative:
    def test_tlb_pressure_enables_both(self, tiny_topo):
        sim = make_sim(tiny_topo)
        sim.thp.disable_alloc()
        sim.thp.disable_promotion()
        comp = ConservativeComponent()
        _, decision = apply_decisions(sim, comp.decide(sim, window(2, 4, walk_l2=10.0, data=90.0)))
        assert decision.enabled_alloc
        assert decision.enabled_promotion
        assert sim.thp.alloc_enabled
        assert sim.thp.promotion_enabled

    def test_fault_pressure_enables_alloc_only(self, tiny_topo):
        sim = make_sim(tiny_topo)
        sim.thp.disable_alloc()
        sim.thp.disable_promotion()
        comp = ConservativeComponent()
        _, decision = apply_decisions(sim, comp.decide(sim, window(2, 4, fault_core_s=0.2)))
        assert decision.enabled_alloc
        assert not decision.enabled_promotion
        assert sim.thp.alloc_enabled
        assert not sim.thp.promotion_enabled

    def test_no_pressure_leaves_disabled(self, tiny_topo):
        sim = make_sim(tiny_topo)
        sim.thp.disable_alloc()
        comp = ConservativeComponent()
        _, decision = apply_decisions(sim, comp.decide(sim, window(2, 4, walk_l2=1.0, data=99.0)))
        assert not decision.enabled_alloc
        assert not sim.thp.alloc_enabled

    def test_custom_thresholds(self, tiny_topo):
        sim = make_sim(tiny_topo)
        sim.thp.disable_alloc()
        comp = ConservativeComponent(ConservativeConfig(walk_l2_threshold_pct=0.5))
        _, decision = apply_decisions(sim, comp.decide(sim, window(2, 4, walk_l2=1.0, data=99.0)))
        assert decision.enabled_alloc


class TestReactive:
    def test_no_samples_is_noop(self, tiny_topo):
        sim = make_sim(tiny_topo)
        comp = ReactiveComponent()
        _, decision = apply_decisions(sim, comp.decide(sim, IbsSamples.empty()))
        assert decision.estimate is None
        assert not decision.split_pages

    def test_false_sharing_triggers_split(self, tiny_topo):
        sim = make_sim(tiny_topo)
        # Granule-private, page-shared samples: only splitting helps.
        region = sim.instance.regions[0]
        granules, nodes = [], []
        for chunk in range(4):
            base = region.lo + chunk * GRANULES_PER_2M
            for rep in range(3):
                granules += [base + 1, base + 100]
                nodes += [0, 1]
        comp = ReactiveComponent()
        summary, decision = apply_decisions(
            sim, comp.decide(sim, samples_for(sim, granules, nodes))
        )
        assert decision.split_pages
        assert decision.shared_pages_split > 0
        assert summary.splits_2m > 0
        assert not sim.thp.alloc_enabled
        assert not sim.thp.promotion_enabled

    def test_hot_page_split_and_interleaved(self, quad_topo):
        sim = make_sim(quad_topo)
        region = sim.instance.regions[0]
        # One page absorbs most samples from every node: hot.
        granules = [region.lo] * 40 + [region.lo + GRANULES_PER_2M, region.lo + 2 * GRANULES_PER_2M]
        nodes = ([0, 1, 2, 3] * 10) + [0, 0]
        comp = ReactiveComponent()
        summary, decision = apply_decisions(
            sim, comp.decide(sim, samples_for(sim, granules, nodes))
        )
        assert decision.hot_pages_split + decision.shared_pages_split > 0
        # The hot page's granules are spread across nodes afterwards.
        span = np.arange(region.lo, region.lo + GRANULES_PER_2M)
        homes = sim.asp.home_nodes(span)
        assert len(np.unique(homes)) == quad_topo.n_nodes

    def test_migration_keeps_locality_no_split(self, tiny_topo):
        sim = make_sim(tiny_topo)
        region = sim.instance.regions[0]
        # Every page single-node but remote: Carrefour alone fixes it,
        # so the reactive component must not split.
        granules, nodes = [], []
        for chunk in range(4):
            base = region.lo + chunk * GRANULES_PER_2M
            granules += [base, base + 1]
            nodes += [1, 1]
        comp = ReactiveComponent()
        _, decision = apply_decisions(
            sim, comp.decide(sim, samples_for(sim, granules, nodes))
        )
        assert not decision.split_pages
        assert decision.shared_pages_split == 0

    def test_cooldown_suppresses_resplit(self, tiny_topo):
        sim = make_sim(tiny_topo)
        region = sim.instance.regions[0]
        granules, nodes = [], []
        for chunk in range(4):
            base = region.lo + chunk * GRANULES_PER_2M
            for rep in range(3):
                granules += [base + 1, base + 100]
                nodes += [0, 1]
        comp = ReactiveComponent(ReactiveConfig(split_cooldown_intervals=2))
        s = samples_for(sim, granules, nodes)
        _, d1 = apply_decisions(sim, comp.decide(sim, s))
        assert d1.shared_pages_split > 0
        _, d2 = apply_decisions(sim, comp.decide(sim, samples_for(sim, granules, nodes)))
        assert "split cooldown" in d2.notes

    def test_misprediction_backoff(self, tiny_topo):
        sim = make_sim(tiny_topo)
        region = sim.instance.regions[0]
        granules, nodes = [], []
        for chunk in range(4):
            base = region.lo + chunk * GRANULES_PER_2M
            for rep in range(3):
                granules += [base + 1, base + 100]
                nodes += [0, 1]
        comp = ReactiveComponent(
            ReactiveConfig(split_cooldown_intervals=1, misprediction_backoff_intervals=3)
        )
        apply_decisions(sim, comp.decide(sim, samples_for(sim, granules, nodes)))
        # Next interval: same (unimproved) LAR -> validation fails.
        _, d2 = apply_decisions(sim, comp.decide(sim, samples_for(sim, granules, nodes)))
        assert any("misprediction" in note for note in d2.notes)
        assert not comp.split_pages
        _, d3 = apply_decisions(sim, comp.decide(sim, samples_for(sim, granules, nodes)))
        assert "split backoff" in d3.notes


class TestCarrefourLp:
    def test_policy_names(self):
        assert CarrefourLpPolicy().name == "carrefour-lp"
        assert CarrefourLpPolicy(conservative=False).name == "reactive-only"
        assert CarrefourLpPolicy(reactive=False).name == "conservative-only"

    def test_setup_starts_with_thp_when_reactive(self, tiny_topo):
        sim = make_sim(tiny_topo)
        CarrefourLpPolicy().setup(sim)
        assert sim.thp.alloc_enabled

    def test_conservative_only_starts_at_4k(self, tiny_topo):
        sim = make_sim(tiny_topo)
        CarrefourLpPolicy(reactive=False).setup(sim)
        assert not sim.thp.alloc_enabled

    def test_interval_log_records(self, tiny_topo):
        sim = make_sim(tiny_topo)
        policy = CarrefourLpPolicy()
        policy.setup(sim)
        apply_decisions(sim, policy.decide(sim, IbsSamples.empty(), window(2, 4)))
        assert len(policy.interval_log) == 1
        log = policy.interval_log[0]
        assert log.conservative is not None
        assert log.reactive is not None

    def test_carrefour_gated_by_thresholds(self, tiny_topo):
        sim = make_sim(tiny_topo)
        policy = CarrefourLpPolicy()
        policy.setup(sim)
        # Healthy window (high LAR via empty traffic -> LAR 100, low maptu).
        summary, _ = apply_decisions(
            sim, policy.decide(sim, IbsSamples.empty(), window(2, 4, data=0.0))
        )
        assert not policy.interval_log[-1].carrefour_engaged
        assert any("disabled" in note for note in summary.notes)
