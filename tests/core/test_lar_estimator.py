"""Tests for the what-if LAR estimator (paper Section 3.2.1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.ibs import IbsSamples
from repro.core.lar_estimator import estimate_lar_after_carrefour
from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M

GIB = 1 << 30


def make_asp(n_chunks=4, huge=True):
    phys = PhysicalMemory([GIB, GIB])
    asp = AddressSpace(n_chunks * GRANULES_PER_2M, phys)
    if huge:
        asp.premap_pattern_2m(0, np.zeros(n_chunks, dtype=np.int8))
    return asp


def make_samples(granules, nodes, homes):
    n = len(granules)
    return IbsSamples(
        granule=np.asarray(granules, dtype=np.int64),
        accessing_node=np.asarray(nodes, dtype=np.int8),
        home_node=np.asarray(homes, dtype=np.int8),
        thread=np.zeros(n, dtype=np.int16),
        from_dram=np.ones(n, dtype=bool),
    )


class TestEstimator:
    def test_invalid_nodes(self):
        with pytest.raises(ConfigurationError):
            estimate_lar_after_carrefour(IbsSamples.empty(), make_asp(), 0)

    def test_empty_samples(self):
        est = estimate_lar_after_carrefour(IbsSamples.empty(), make_asp(), 2)
        assert est.current == 100.0
        assert est.n_samples == 0

    def test_single_node_pages_predicted_local(self):
        # All samples from node 1, pages currently on node 0 -> current
        # LAR 0, but migrating makes everything local.
        asp = make_asp()
        samples = make_samples([0, 1, 2], [1, 1, 1], [0, 0, 0])
        est = estimate_lar_after_carrefour(samples, asp, 2)
        assert est.current == 0.0
        assert est.with_carrefour == pytest.approx(100.0)
        assert est.carrefour_gain == pytest.approx(100.0)

    def test_shared_pages_predicted_interleaved(self):
        # One 2MB page sampled from both nodes: interleave -> 1/2 local.
        asp = make_asp()
        samples = make_samples([0, 1], [0, 1], [0, 0])
        est = estimate_lar_after_carrefour(samples, asp, 2)
        assert est.with_carrefour == pytest.approx(50.0)

    def test_split_separates_false_sharing(self):
        # Two 4KB granules of the same 2MB page, each private to one
        # node: at 2MB granularity the page is shared (1/2 local), but
        # split it becomes two single-node pages (100% local).
        asp = make_asp()
        samples = make_samples([0, 0, 7, 7], [0, 0, 1, 1], [0, 0, 0, 0])
        est = estimate_lar_after_carrefour(samples, asp, 2)
        assert est.with_carrefour == pytest.approx(50.0)
        assert est.with_carrefour_and_split == pytest.approx(100.0)
        assert est.split_gain > est.carrefour_gain

    def test_sparse_sampling_optimism(self):
        # The paper's SSCA failure mode: each sub-page gets one sample,
        # so every sub-page looks single-node and the split estimate is
        # wildly optimistic even though the data is genuinely shared.
        asp = make_asp()
        rng = np.random.default_rng(0)
        granules = np.arange(256)
        nodes = rng.integers(0, 2, size=256)
        samples = make_samples(granules, nodes, np.zeros(256))
        est = estimate_lar_after_carrefour(samples, asp, 2)
        assert est.with_carrefour_and_split == pytest.approx(100.0)
        # At 2MB granularity the page is visibly shared.
        assert est.with_carrefour == pytest.approx(50.0)

    def test_gains_relative_to_current(self):
        asp = make_asp()
        samples = make_samples([0, 1], [0, 1], [0, 1])
        est = estimate_lar_after_carrefour(samples, asp, 2)
        assert est.current == pytest.approx(100.0)
        assert est.carrefour_gain == pytest.approx(est.with_carrefour - 100.0)
