"""Tests for sample tables and sample-based metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.ibs import IbsSamples
from repro.core.metrics import PageSampleTable, sample_imbalance, sample_lar
from repro.vm.address_space import AddressSpace, BACKING_ID_2M_OFFSET
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M

GIB = 1 << 30


def make_asp(n_chunks=4):
    phys = PhysicalMemory([GIB, GIB])
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


def make_samples(granules, nodes, threads=None, homes=None):
    n = len(granules)
    return IbsSamples(
        granule=np.asarray(granules, dtype=np.int64),
        accessing_node=np.asarray(nodes, dtype=np.int8),
        home_node=np.asarray(homes if homes is not None else nodes, dtype=np.int8),
        thread=np.asarray(threads if threads is not None else [0] * n, dtype=np.int16),
        from_dram=np.ones(n, dtype=bool),
    )


class TestPageSampleTable:
    def test_empty(self):
        table = PageSampleTable.from_samples(IbsSamples.empty(), make_asp(), 2)
        assert table.n_samples == 0
        assert table.ids.size == 0

    def test_groups_by_backing(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        samples = make_samples([0, 5, 100], [0, 0, 1])
        table = PageSampleTable.from_samples(samples, asp, 2)
        assert table.ids.tolist() == [BACKING_ID_2M_OFFSET]
        assert table.totals[0] == 3

    def test_4k_granularity_ignores_backing(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        samples = make_samples([0, 5, 5], [0, 0, 1])
        table = PageSampleTable.from_samples(samples, asp, 2, granularity="4k")
        assert table.ids.tolist() == [0, 5]

    def test_invalid_granularity(self):
        with pytest.raises(ConfigurationError):
            PageSampleTable.from_samples(IbsSamples.empty(), make_asp(), 2, "8k")

    def test_node_counts(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        samples = make_samples([0, 0, 1], [0, 1, 1])
        table = PageSampleTable.from_samples(samples, asp, 2)
        idx0 = list(table.ids).index(0)
        assert table.node_counts[idx0].tolist() == [1.0, 1.0]

    def test_single_and_shared_masks(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        samples = make_samples([0, 0, 1], [0, 1, 1])
        table = PageSampleTable.from_samples(samples, asp, 2)
        by_id = dict(zip(table.ids.tolist(), table.shared_mask().tolist()))
        assert by_id[0] is True
        assert by_id[1] is False

    def test_thread_counts(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        samples = make_samples([0, 0, 1], [0, 0, 0], threads=[0, 1, 1])
        table = PageSampleTable.from_samples(samples, asp, 2)
        by_id = dict(zip(table.ids.tolist(), table.thread_counts.tolist()))
        assert by_id[0] == 2
        assert by_id[1] == 1

    def test_wide_thread_ids_do_not_collide(self):
        # Thread ids past the old fixed 65536 pair multiplier used to
        # alias (page, thread) pairs across pages; the multiplier now
        # widens with the data.
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        samples = IbsSamples(
            granule=np.array([0, 0, 1], dtype=np.int64),
            accessing_node=np.zeros(3, dtype=np.int8),
            home_node=np.zeros(3, dtype=np.int8),
            thread=np.array([0, 70_000, 70_000], dtype=np.int64),
            from_dram=np.ones(3, dtype=bool),
        )
        table = PageSampleTable.from_samples(samples, asp, 2)
        by_id = dict(zip(table.ids.tolist(), table.thread_counts.tolist()))
        assert by_id[0] == 2
        assert by_id[1] == 1

    def test_negative_thread_ids_rejected(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        samples = IbsSamples(
            granule=np.array([0], dtype=np.int64),
            accessing_node=np.zeros(1, dtype=np.int8),
            home_node=np.zeros(1, dtype=np.int8),
            thread=np.array([-1], dtype=np.int64),
            from_dram=np.ones(1, dtype=bool),
        )
        with pytest.raises(ConfigurationError):
            PageSampleTable.from_samples(samples, asp, 2)

    def test_hot_mask(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        samples = make_samples([0] * 9 + [1], [0] * 10)
        table = PageSampleTable.from_samples(samples, asp, 2)
        hot = dict(zip(table.ids.tolist(), table.hot_mask(50.0).tolist()))
        assert hot[0] is True
        assert hot[1] is False

    def test_dominant_nodes(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        samples = make_samples([0, 0, 0], [1, 1, 0])
        table = PageSampleTable.from_samples(samples, asp, 2)
        assert table.dominant_nodes()[0] == 1


class TestSampleMetrics:
    def test_lar_empty(self):
        assert sample_lar(IbsSamples.empty()) == 100.0

    def test_lar(self):
        samples = make_samples([0, 1, 2, 3], [0, 0, 1, 1], homes=[0, 1, 1, 0])
        assert sample_lar(samples) == pytest.approx(50.0)

    def test_imbalance_empty(self):
        assert sample_imbalance(IbsSamples.empty(), 2) == 0.0

    def test_imbalance_balanced(self):
        samples = make_samples([0, 1], [0, 1], homes=[0, 1])
        assert sample_imbalance(samples, 2) == pytest.approx(0.0)

    def test_imbalance_skewed(self):
        samples = make_samples([0, 1], [0, 1], homes=[0, 0])
        assert sample_imbalance(samples, 2) == pytest.approx(100.0)
