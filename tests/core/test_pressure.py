"""Watermark logic of the memory-pressure policy."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.pressure import MemoryPressurePolicy
from repro.hardware.ibs import IbsSamples
from repro.sim.engine import ActionExecutor, PageTableState
from repro.sim.policy import PolicyActionSummary
from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, PAGE_4K
from repro.vm.thp import ThpState

MIB = 1 << 20


def make_sim(n_chunks=4, n_nodes=2, dram=64 * MIB):
    phys = PhysicalMemory([dram] * n_nodes)
    asp = AddressSpace(n_chunks * GRANULES_PER_2M, phys)
    return SimpleNamespace(
        asp=asp,
        phys=phys,
        thp=ThpState(),
        page_tables=PageTableState(),
        machine=SimpleNamespace(n_nodes=n_nodes),
    )


def drive(policy, sim):
    executor = ActionExecutor(sim)
    summary = PolicyActionSummary()
    executor.drive(policy.decide(sim, IbsSamples.empty(), None), summary)
    return summary


def pin_to_free_fraction(sim, fraction):
    """Pin enough of every node that ``fraction`` of memory stays free."""
    for node in sim.phys.nodes:
        node.pin_fragmented(int(node.free_bytes * (1.0 - fraction)))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"low_watermark": -0.1},
            {"low_watermark": 0.5, "high_watermark": 0.5},
            {"high_watermark": 1.5},
            {"batch_granules": 0},
            {"batch_granules": -1},
        ],
    )
    def test_bad_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MemoryPressurePolicy(**kwargs)

    def test_name_defaults(self):
        assert MemoryPressurePolicy().name == "pressure-reclaim"
        assert MemoryPressurePolicy(name="x").name == "x"

    def test_no_ibs(self):
        assert not MemoryPressurePolicy().wants_ibs()


class TestWatermarks:
    def test_idle_above_low_watermark(self):
        sim = make_sim()
        sim.asp.fault_in(np.arange(64), node=0, thp_alloc=False)
        summary = drive(MemoryPressurePolicy(), sim)
        # No decision at all: the free fraction is ~1.
        assert summary.pages_reclaimed == 0
        assert summary.notes == []

    def test_reclaims_below_low_watermark(self):
        sim = make_sim()
        sim.thp.enable_alloc()
        sim.asp.fault_in(np.arange(256), node=0, thp_alloc=False)
        pin_to_free_fraction(sim, 0.05)
        policy = MemoryPressurePolicy(batch_granules=128)
        summary = drive(policy, sim)
        assert summary.pages_reclaimed == 128
        assert summary.bytes_reclaimed == 128 * PAGE_4K
        assert not sim.thp.alloc_enabled  # THP allocation suppressed
        assert any("pressure reclaim" in note for note in summary.notes)
        sim.asp.check_invariants()

    def test_victims_are_highest_addresses(self):
        sim = make_sim()
        sim.asp.fault_in(np.arange(256), node=0, thp_alloc=False)
        policy = MemoryPressurePolicy(batch_granules=64)
        victims = policy._victims(sim)
        assert victims.tolist() == list(range(192, 256))

    def test_victims_deterministic(self):
        sim = make_sim()
        sim.asp.fault_in(np.arange(300), node=1, thp_alloc=False)
        policy = MemoryPressurePolicy(batch_granules=50)
        assert np.array_equal(policy._victims(sim), policy._victims(sim))

    def test_thp_reenabled_above_high_watermark(self):
        sim = make_sim()
        sim.thp.enable_alloc()
        sim.asp.fault_in(np.arange(256), node=0, thp_alloc=False)
        pin_to_free_fraction(sim, 0.05)
        policy = MemoryPressurePolicy(batch_granules=128)
        drive(policy, sim)
        assert policy._thp_suppressed
        # Pressure lifts: the pins go away, free fraction recovers.
        for node in sim.phys.nodes:
            node.release_fragmentation()
        drive(policy, sim)
        assert not policy._thp_suppressed
        assert sim.thp.alloc_enabled

    def test_between_watermarks_holds_state(self):
        sim = make_sim()
        sim.thp.enable_alloc()
        sim.asp.fault_in(np.arange(256), node=0, thp_alloc=False)
        pin_to_free_fraction(sim, 0.05)
        policy = MemoryPressurePolicy(
            low_watermark=0.10, high_watermark=0.60, batch_granules=64
        )
        drive(policy, sim)
        assert policy._thp_suppressed
        # Recover to ~0.5: above low, below high -> no flapping.
        for node in sim.phys.nodes:
            node.release_fragmentation()
        pin_to_free_fraction(sim, 0.5)
        summary = drive(policy, sim)
        assert policy._thp_suppressed
        assert not sim.thp.alloc_enabled
        assert summary.pages_reclaimed == 0

    def test_setup_honours_thp_flag(self):
        sim = make_sim()
        MemoryPressurePolicy(thp=True).setup(sim)
        assert sim.thp.alloc_enabled and sim.thp.promotion_enabled
        MemoryPressurePolicy(thp=False).setup(sim)
        assert not sim.thp.alloc_enabled and not sim.thp.promotion_enabled
