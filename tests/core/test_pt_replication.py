"""Page-table NUMA modelling and the Mitosis-style replication policy."""

import numpy as np

from repro.experiments.configs import make_policy
from repro.sim.trace import run_traced
from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, PAGE_4K

GIB = 1 << 30

WORKLOAD, MACHINE = "SSCA.20", "A"


def total(result, field):
    return sum(getattr(s, field) for _, s in result.action_log)


class TestRemoteWalkPenalty:
    def test_pt_remote_slower_than_thp(self, run):
        """Remote table walks must cost simulated time vs plain THP."""
        thp = run(WORKLOAD, MACHINE, "thp")
        remote = run(WORKLOAD, MACHINE, "pt-remote")
        assert remote.runtime_s > thp.runtime_s

    def test_replication_recovers_most_of_the_penalty(self, run):
        thp = run(WORKLOAD, MACHINE, "thp")
        remote = run(WORKLOAD, MACHINE, "pt-remote")
        replicated = run(WORKLOAD, MACHINE, "replication")
        assert thp.runtime_s < replicated.runtime_s < remote.runtime_s
        penalty = remote.runtime_s - thp.runtime_s
        residual = replicated.runtime_s - thp.runtime_s
        # Only the pre-replication interval(s) still pay remote walks.
        assert residual < 0.5 * penalty

    def test_pt_remote_moves_no_data(self, run):
        remote = run(WORKLOAD, MACHINE, "pt-remote")
        assert total(remote, "bytes_migrated") == 0
        assert total(remote, "bytes_replicated") == 0

    def test_replication_charges_copy_cost(self, run):
        replicated = run(WORKLOAD, MACHINE, "replication")
        copied = total(replicated, "bytes_replicated")
        assert copied > 0
        assert copied % PAGE_4K == 0
        assert total(replicated, "replicated_pages") == copied // PAGE_4K
        assert total(replicated, "bytes_migrated") == 0


class TestReplicationDecision:
    def test_replicates_exactly_once(self, quick_settings):
        _, trace = run_traced(
            WORKLOAD, MACHINE, "replication", quick_settings
        )
        assert trace.counts() == {"ReplicatePageTables": 1}
        assert all(rec["applied"] for rec in trace.records)

    def test_pt_remote_decides_nothing(self, quick_settings):
        _, trace = run_traced(WORKLOAD, MACHINE, "pt-remote", quick_settings)
        assert trace.records == []

    def test_composes_with_carrefour(self, quick_settings):
        result, trace = run_traced(
            WORKLOAD, MACHINE, "carrefour-2m+replication", quick_settings
        )
        kinds = trace.counts()
        assert kinds.get("ReplicatePageTables", 0) == 1
        assert kinds.get("MigratePage", 0) > 0
        assert total(result, "bytes_replicated") > 0
        assert total(result, "bytes_migrated") > 0

    def test_policy_flags(self):
        remote = make_policy("pt-remote")
        replicated = make_policy("replication")
        assert not remote.replicate and replicated.replicate
        assert not remote.wants_ibs()
        assert remote.name == "pt-remote"
        assert replicated.name == "replication"


class TestPageTableBytes:
    def make_asp(self, n_chunks=4, n_nodes=2):
        phys = PhysicalMemory([GIB] * n_nodes)
        return AddressSpace(n_chunks * GRANULES_PER_2M, phys)

    def test_empty_space_has_no_tables(self):
        asp = self.make_asp()
        assert asp.page_table_bytes() == 0

    def test_huge_mapping_pays_pmd_only(self):
        asp = self.make_asp()
        asp.premap_pattern_2m(0, np.zeros(4, dtype=np.int8))
        # All four 2M chunks share one PMD page; no PTE pages needed.
        assert asp.page_table_bytes() == PAGE_4K

    def test_4k_mapping_pays_pte_pages(self):
        asp = self.make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        # One PTE page for the chunk's 4KB entries + one PMD page.
        assert asp.page_table_bytes() == 2 * PAGE_4K

    def test_split_grows_tables(self):
        from repro.vm.address_space import (
            BACKING_ID_2M_OFFSET,
            split_backing_page,
        )

        asp = self.make_asp()
        asp.premap_pattern_2m(0, np.zeros(4, dtype=np.int8))
        before = asp.page_table_bytes()
        split_backing_page(asp, BACKING_ID_2M_OFFSET)
        assert asp.page_table_bytes() > before
