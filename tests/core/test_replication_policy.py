"""Tests for Carrefour's replication mechanism at the policy level."""

import numpy as np
import pytest

from types import SimpleNamespace

from repro.hardware.ibs import IbsSamples
from repro.core.carrefour import CarrefourConfig, CarrefourEngine
from repro.core.metrics import PageSampleTable
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation, apply_decisions
from repro.sim.policy import LinuxPolicy
from repro.vm.thp import ThpState
from repro.vm.address_space import AddressSpace, BACKING_ID_2M_OFFSET
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import SharedRegion

GIB = 1 << 30
MIB = 1 << 20


def make_asp(n_chunks=4, n_nodes=2):
    phys = PhysicalMemory([GIB] * n_nodes)
    asp = AddressSpace(n_chunks * GRANULES_PER_2M, phys)
    asp.premap_pattern_2m(0, np.zeros(n_chunks, dtype=np.int8))
    return asp


def place(engine, table, asp, n_nodes):
    host = SimpleNamespace(
        asp=asp, thp=ThpState(), machine=SimpleNamespace(n_nodes=n_nodes)
    )
    summary, _ = apply_decisions(
        host, engine.decide_placement(table, asp, n_nodes)
    )
    return summary


def make_table(asp, granules, nodes, writes=None, n_nodes=2):
    n = len(granules)
    samples = IbsSamples(
        granule=np.asarray(granules, dtype=np.int64),
        accessing_node=np.asarray(nodes, dtype=np.int8),
        home_node=np.zeros(n, dtype=np.int8),
        thread=np.asarray(nodes, dtype=np.int16),
        from_dram=np.ones(n, dtype=bool),
        is_write=(
            np.asarray(writes, dtype=bool)
            if writes is not None
            else np.zeros(n, dtype=bool)
        ),
    )
    return PageSampleTable.from_samples(samples, asp, n_nodes)


class TestReplicationDecision:
    def test_read_only_shared_page_replicates(self):
        asp = make_asp()
        engine = CarrefourEngine()
        table = make_table(asp, [0, 0, 0, 1, 1, 1], [0, 1, 0, 1, 0, 1])
        summary = place(engine, table, asp, 2)
        assert summary.replicated_pages == 1
        assert asp.replicated_2m[0]

    def test_written_shared_page_interleaves_instead(self):
        asp = make_asp()
        engine = CarrefourEngine()
        writes = [False, False, True, False, False, False]
        table = make_table(asp, [0, 0, 0, 1, 1, 1], [0, 1, 0, 1, 0, 1], writes)
        summary = place(engine, table, asp, 2)
        assert summary.replicated_pages == 0
        assert not asp.replicated_2m[0]

    def test_too_few_samples_do_not_replicate(self):
        asp = make_asp()
        engine = CarrefourEngine(CarrefourConfig(replication_min_samples=10))
        table = make_table(asp, [0, 0, 1, 1], [0, 1, 0, 1])
        summary = place(engine, table, asp, 2)
        assert summary.replicated_pages == 0

    def test_replication_disabled_by_config(self):
        asp = make_asp()
        engine = CarrefourEngine(CarrefourConfig(replication_enabled=False))
        table = make_table(asp, [0] * 6, [0, 1] * 3)
        summary = place(engine, table, asp, 2)
        assert summary.replicated_pages == 0

    def test_memory_pressure_disables_replication(self):
        phys = PhysicalMemory([8 * (1 << 21), 8 * (1 << 21)])
        asp = AddressSpace(4 * GRANULES_PER_2M, phys)
        asp.premap_pattern_2m(0, np.zeros(4, dtype=np.int8))
        # Fill most of the rest of memory.
        phys[0].alloc_small(1500)
        phys[1].alloc_small(3000)
        engine = CarrefourEngine(
            CarrefourConfig(replication_min_free_fraction=0.5)
        )
        table = make_table(asp, [0] * 6, [0, 1] * 3)
        summary = place(engine, table, asp, 2)
        assert summary.replicated_pages == 0

    def test_replication_counts_against_budget(self):
        # Both pages are already interleaved (settled in an earlier
        # interval); the remaining budget covers exactly one replica
        # copy, so the second upgrade is deferred.
        asp = make_asp()
        engine = CarrefourEngine(
            CarrefourConfig(max_migration_bytes_per_interval=1 << 21)
        )
        engine._interleaved.update(
            {BACKING_ID_2M_OFFSET, BACKING_ID_2M_OFFSET + 1}
        )
        granules = [0] * 6 + [GRANULES_PER_2M] * 6
        nodes = [0, 1] * 6
        table = make_table(asp, granules, nodes)
        summary = place(engine, table, asp, 2)
        assert summary.replicated_pages == 1
        assert summary.bytes_replicated == 1 << 21
        assert any("deferred" in n for n in summary.notes)

    def test_balance_first_then_replicate(self):
        # With ample budget every read-only shared page is upgraded.
        asp = make_asp()
        engine = CarrefourEngine()
        granules = [0] * 6 + [GRANULES_PER_2M] * 6
        nodes = [0, 1] * 6
        table = make_table(asp, granules, nodes)
        summary = place(engine, table, asp, 2)
        assert summary.replicated_pages == 2


class TestWriteCollapseInEngine:
    def test_write_to_replicated_page_collapses(self, tiny_topo):
        cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e6, dram_accesses=1e5)
        region = SharedRegion("s", 8 * MIB, 1.0, write_fraction=0.5)
        inst = WorkloadInstance("toy", tiny_topo, [region], cost, total_epochs=2)
        sim = Simulation(tiny_topo, inst, LinuxPolicy(True), SimConfig(stream_length=256))
        nodes = tiny_topo.core_to_node[: inst.n_threads].astype(np.int64)
        inst.premap_epoch(0, sim.asp, nodes, True)
        chunk = region.lo // GRANULES_PER_2M
        sim.asp.replicate_backing(chunk + BACKING_ID_2M_OFFSET)
        # The engine would premap again at epoch 0; the space is already
        # materialised, so stub the allocation phase out.
        from repro.workloads.base import FaultBatch

        inst.premap_epoch = lambda *a, **k: FaultBatch.zeros(inst.n_threads)
        result = sim.run()
        assert not sim.asp.replicated_2m[chunk]
        assert result.bank.total("replicas_collapsed") >= 1
