"""Tests for the persistent on-disk result cache and its key scheme."""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

import repro
from repro.experiments import runner as runner_mod
from repro.experiments.cache import (
    CACHE_DIR_ENV,
    CACHE_ENABLE_ENV,
    ResultCache,
    cache_enabled,
    cache_root,
    run_fingerprint,
)
from repro.experiments.runner import (
    RunSettings,
    canonical_machine,
    clear_cache,
    run_benchmark,
)
from repro.sim.config import SimConfig


@pytest.fixture
def store(tmp_path, monkeypatch):
    """A fresh cache rooted in a per-test tmp dir, memo cleared."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    clear_cache()
    yield ResultCache.default()
    clear_cache()


def _fp(config: SimConfig, **overrides) -> str:
    identity = dict(
        workload="Kmeans",
        machine="A",
        policy="thp",
        backing_1g=False,
        config=config,
        seed=0,
        stamp="test-stamp",
    )
    identity.update(overrides)
    return run_fingerprint(**identity)


class TestFingerprint:
    def test_stable(self):
        config = SimConfig.quick()
        assert _fp(config) == _fp(SimConfig.quick())

    @pytest.mark.parametrize(
        "field,value",
        [
            # Regression: the old tuple key dropped these four fields,
            # so two configs differing only here collided.
            ("max_epochs", 7),
            ("khugepaged_batch", 9),
            ("ibs_cost_cycles", 123.0),
            ("track_access_stats", False),
            # And the ones it always covered must still matter.
            ("epoch_s", 0.125),
            ("stream_length", 512),
            ("scale", 0.5),
            ("ibs_rate", 1e-3),
            ("seed", 3),
        ],
    )
    def test_every_config_field_matters(self, field, value):
        base = SimConfig.quick()
        changed = replace(base, **{field: value})
        assert _fp(base) != _fp(changed)

    @pytest.mark.parametrize(
        "override",
        [
            {"workload": "CG.D"},
            {"machine": "B"},
            {"policy": "linux-4k"},
            {"backing_1g": True},
            {"seed": 5},
            {"stamp": "other-stamp"},
        ],
    )
    def test_identity_fields_matter(self, override):
        config = SimConfig.quick()
        assert _fp(config) != _fp(config, **override)

    def test_default_stamp_is_package_version(self, monkeypatch):
        config = SimConfig.quick()
        before = run_fingerprint("Kmeans", "A", "thp", False, config, 0)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        after = run_fingerprint("Kmeans", "A", "thp", False, config, 0)
        assert before != after


class TestMemoKeyRegression:
    """The in-process memo must also use the complete config."""

    def test_memo_key_covers_dropped_fields(self):
        base = RunSettings.quick()
        for field, value in [
            ("max_epochs", 7),
            ("khugepaged_batch", 9),
            ("ibs_cost_cycles", 123.0),
            ("track_access_stats", False),
        ]:
            other = RunSettings(
                config=replace(base.config, **{field: value}), seed=base.seed
            )
            assert base.cache_key("Kmeans", "A", "thp", False) != other.cache_key(
                "Kmeans", "A", "thp", False
            ), field

    def test_no_stale_collision_between_max_epochs(self, store):
        quick = SimConfig.quick()
        short = RunSettings(config=replace(quick, max_epochs=2))
        longer = RunSettings(config=replace(quick, max_epochs=4))
        a = run_benchmark("Kmeans", "A", "linux-4k", short)
        b = run_benchmark("Kmeans", "A", "linux-4k", longer)
        assert a is not b
        assert len(a.epoch_times_s) == 2
        assert len(b.epoch_times_s) == 4

    def test_track_access_stats_not_collided(self, store):
        quick = SimConfig.quick()
        with_stats = RunSettings(config=quick)
        without = RunSettings(config=replace(quick, track_access_stats=False))
        a = run_benchmark("Kmeans", "A", "linux-4k", with_stats)
        b = run_benchmark("Kmeans", "A", "linux-4k", without)
        assert a.hot_stats is not None
        assert b.hot_stats is None


class TestResultCache:
    def test_roundtrip(self, store):
        settings = RunSettings.quick()
        result = run_benchmark("Kmeans", "A", "linux-4k", settings)
        key = settings.fingerprint("Kmeans", canonical_machine("A"), "linux-4k", False)
        loaded = store.get(key)
        assert loaded is not None
        assert loaded is not result
        assert loaded.runtime_s == result.runtime_s
        assert loaded.epoch_times_s == result.epoch_times_s
        assert loaded.bank.total("tlb_misses") == result.bank.total("tlb_misses")

    def test_hit_across_memo_clear_skips_simulation(self, store, monkeypatch):
        settings = RunSettings.quick()
        first = run_benchmark("Kmeans", "A", "linux-4k", settings)
        clear_cache()

        def _boom(*args, **kwargs):
            raise AssertionError("simulated again despite persistent hit")

        monkeypatch.setattr(runner_mod, "execute_run", _boom)
        second = run_benchmark("Kmeans", "A", "linux-4k", settings)
        assert second is not first
        assert second.runtime_s == first.runtime_s

    def test_corrupted_entry_reruns_not_crashes(self, store):
        settings = RunSettings.quick()
        run_benchmark("Kmeans", "A", "linux-4k", settings)
        key = settings.fingerprint("Kmeans", canonical_machine("A"), "linux-4k", False)
        path = store.path_for(key)
        path.write_bytes(b"not a pickle at all")
        assert store.get(key) is None
        assert not path.exists()  # bad entry dropped
        clear_cache()
        result = run_benchmark("Kmeans", "A", "linux-4k", settings)
        assert result.runtime_s > 0

    def test_wrong_type_entry_is_a_miss(self, store):
        store.root.mkdir(parents=True, exist_ok=True)
        path = store.path_for("deadbeef")
        path.write_bytes(pickle.dumps({"not": "a result"}))
        assert store.get("deadbeef") is None
        assert not path.exists()

    def test_atomic_write_leaves_no_tmp_files(self, store):
        settings = RunSettings.quick()
        run_benchmark("Kmeans", "A", "linux-4k", settings)
        leftovers = [
            p for p in store.root.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_stats_and_clear(self, store):
        settings = RunSettings.quick()
        run_benchmark("Kmeans", "A", "linux-4k", settings)
        run_benchmark("Kmeans", "A", "thp", settings)
        stats = store.stats()
        assert stats.n_entries == 2
        assert stats.total_bytes > 0
        assert stats.describe()
        assert store.clear() == 2
        assert store.stats().n_entries == 0

    def test_version_stamp_invalidates(self, store, monkeypatch):
        settings = RunSettings.quick()
        run_benchmark("Kmeans", "A", "linux-4k", settings)
        clear_cache()
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        # The old entry is unreachable under the new stamp: a fresh
        # fingerprint points at a missing file.
        key = settings.fingerprint("Kmeans", canonical_machine("A"), "linux-4k", False)
        assert store.get(key) is None

    def test_disabled_by_env(self, store, monkeypatch):
        monkeypatch.setenv(CACHE_ENABLE_ENV, "0")
        assert not cache_enabled()
        settings = RunSettings.quick()
        run_benchmark("Kmeans", "A", "linux-4k", settings)
        assert store.stats().n_entries == 0

    def test_root_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert cache_root() == tmp_path / "elsewhere"

    def test_missing_dir_stats(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "never-created"))
        store = ResultCache.default()
        assert store.stats().n_entries == 0
        assert store.clear() == 0
