"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.experiments.cache import CACHE_DIR_ENV, CACHE_ENABLE_ENV
from repro.experiments.experiments import EXPERIMENTS
from repro.experiments.parallel import JOBS_ENV
from repro.experiments.runner import RunSettings, run_benchmark


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name, "--quick"])
            assert args.command == name
            assert args.quick

    def test_jobs_and_fresh_flags(self):
        parser = build_parser()
        args = parser.parse_args(["figure1", "--quick", "--jobs", "4", "--fresh"])
        assert args.jobs == 4
        assert args.fresh

    def test_cache_subcommand(self):
        parser = build_parser()
        assert parser.parse_args(["cache", "stats"]).action == "stats"
        assert parser.parse_args(["cache", "clear"]).action == "clear"
        with pytest.raises(SystemExit):
            parser.parse_args(["cache", "nope"])

    def test_run_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "CG.D", "--machine", "B", "--policy", "carrefour-lp", "--quick"]
        )
        assert args.workload == "CG.D"
        assert args.machine == "B"

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "CG.D" in out

    def test_run_single_benchmark(self, capsys):
        code = main(
            ["run", "Kmeans", "--machine", "A", "--policy", "linux-4k",
             "--quick", "--scale", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Kmeans" in out
        assert "runtime=" in out

    def test_jobs_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")  # registers restore-on-teardown
        code = main(
            ["run", "Kmeans", "--machine", "A", "--policy", "linux-4k",
             "--quick", "--scale", "0.25", "--jobs", "3"]
        )
        assert code == 0
        assert os.environ[JOBS_ENV] == "3"

    def test_fresh_flag_disables_persistent_cache(self, capsys, monkeypatch):
        monkeypatch.setenv(CACHE_ENABLE_ENV, "1")  # registers restore-on-teardown
        code = main(
            ["run", "Kmeans", "--machine", "A", "--policy", "linux-4k",
             "--quick", "--scale", "0.25", "--fresh"]
        )
        assert code == 0
        assert os.environ[CACHE_ENABLE_ENV] == "0"

    def test_cache_stats_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cli-cache"))
        from repro.experiments.runner import clear_cache

        clear_cache()
        run_benchmark("Kmeans", "A", "linux-4k", RunSettings.quick())
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:    1" in out
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert main(["cache", "stats"]) == 0
        assert "entries:    0" in capsys.readouterr().out
        clear_cache()
