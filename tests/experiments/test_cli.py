"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.experiments import EXPERIMENTS


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name, "--quick"])
            assert args.command == name
            assert args.quick

    def test_run_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "CG.D", "--machine", "B", "--policy", "carrefour-lp", "--quick"]
        )
        assert args.workload == "CG.D"
        assert args.machine == "B"

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "CG.D" in out

    def test_run_single_benchmark(self, capsys):
        code = main(
            ["run", "Kmeans", "--machine", "A", "--policy", "linux-4k",
             "--quick", "--scale", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Kmeans" in out
        assert "runtime=" in out
