"""CLI contract for the ``repro policies`` and ``repro trace`` commands."""

import json

from repro.cli import main
from repro.experiments.configs import POLICIES


def test_policies_lists_whole_registry(capsys):
    assert main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in POLICIES:
        assert name in out
    assert "compose with '+'" in out
    assert "(undocumented)" not in out


def test_trace_runs_and_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "trace",
                "Kmeans",
                "--machine",
                "A",
                "--policy",
                "carrefour-2m",
                "--quick",
                "--jsonl",
                str(path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "decisions recorded" in out
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["trace"]["policy"] == "carrefour-2m"
    assert len(lines) > 1  # at least one decision record follows
    record = json.loads(lines[1])
    assert {"t", "epoch", "source", "decision", "applied"} <= set(record)
