"""Structure tests for the experiment drivers, with a stubbed runner.

These tests verify every driver's report shape (headers, row counts,
data payload) without paying for real simulations: ``run_benchmark`` is
monkeypatched to return canned results.
"""

import numpy as np
import pytest

from repro.experiments import experiments as exp_mod
from repro.experiments.runner import RunSettings
from repro.hardware.counters import CounterBank
from repro.sim.results import RunMetrics
from repro.workloads.registry import AFFECTED_SET, FIGURE1_ORDER, UNAFFECTED_SET


class FakeResult:
    """Duck-typed stand-in for SimulationResult."""

    def __init__(self, runtime=1.0):
        self.runtime_s = runtime
        self.bank = CounterBank(2, 4)
        self.hot_stats = None
        self.action_log = []
        self.final_page_counts = {}

    def metrics(self):
        return RunMetrics(
            runtime_s=self.runtime_s,
            lar_pct=50.0,
            imbalance_pct=10.0,
            pct_l2_walk=1.0,
            fault_time_total_s=0.1,
            max_fault_pct=1.0,
            tlb_misses=0.0,
            dram_requests=1.0,
            pamup_pct=1.0,
            n_hot_pages=0,
            psp_pct=5.0,
        )

    def improvement_over(self, other):
        return (other.runtime_s / self.runtime_s - 1.0) * 100.0

    def steady_lar(self, *a):
        return 50.0

    def steady_imbalance(self, *a):
        return 10.0


@pytest.fixture
def stub_runner(monkeypatch):
    calls = []

    def fake_run(workload, machine, policy, settings=None, **kwargs):
        calls.append((workload, machine, policy, kwargs))
        # Vary runtime per policy so improvements are nonzero.
        runtime = {"linux-4k": 2.0, "thp": 1.5}.get(policy, 1.0)
        return FakeResult(runtime)

    # Patch both the driver module's imported binding and the runner
    # module's global (used internally by runner.improvement).
    monkeypatch.setattr(exp_mod, "run_benchmark", fake_run)
    monkeypatch.setattr("repro.experiments.runner.run_benchmark", fake_run)
    return calls


@pytest.fixture
def settings():
    return RunSettings.quick()


class TestFigureDrivers:
    def test_figure1_covers_all_benchmarks(self, stub_runner, settings):
        report = exp_mod.figure1(settings)
        assert len(report.rows) == len(FIGURE1_ORDER)
        assert report.headers == ["benchmark", "machine A", "machine B"]
        assert set(report.data) == {"A", "B"}
        assert set(report.data["A"]) == set(FIGURE1_ORDER)

    def test_figure2_affected_set(self, stub_runner, settings):
        report = exp_mod.figure2(settings)
        assert [row[0] for row in report.rows] == AFFECTED_SET
        assert len(report.headers) == 1 + 2 * 2  # two policies x two machines

    def test_figure3_policies(self, stub_runner, settings):
        report = exp_mod.figure3(settings)
        assert "carrefour-lp (A)" in report.headers

    def test_figure4_baseline_is_thp(self, stub_runner, settings):
        exp_mod.figure4(settings)
        baselines = {c[2] for c in stub_runner if c[0] == "CG.D"}
        assert "thp" in baselines

    def test_figure5_unaffected_set(self, stub_runner, settings):
        report = exp_mod.figure5(settings)
        assert [row[0] for row in report.rows] == UNAFFECTED_SET

    def test_table1_five_cases(self, stub_runner, settings):
        report = exp_mod.table1(settings)
        assert len(report.rows) == 5
        assert "CG.D@B" in report.data

    def test_table2_three_by_three(self, stub_runner, settings):
        report = exp_mod.table2(settings)
        assert len(report.rows) == 9  # 3 workloads x 3 policies

    def test_table3_uses_steady_metrics(self, stub_runner, settings):
        report = exp_mod.table3(settings)
        assert "steady" in report.title
        assert report.data["CG.D@B"]["carrefour-lp"]["lar"] == 50.0

    def test_overhead_covers_everything(self, stub_runner, settings):
        report = exp_mod.overhead(settings)
        assert len(report.rows) == len(FIGURE1_ORDER)

    def test_verylarge_uses_1g_backing(self, stub_runner, settings):
        exp_mod.verylarge(settings)
        backings = [c[3].get("backing_1g") for c in stub_runner]
        assert any(backings)


class TestRunExperiment:
    def test_registry_complete(self):
        expected = {
            "figure1", "table1", "figure2", "table2", "figure3",
            "figure4", "table3", "figure5", "overhead", "verylarge",
            "lwp", "autonuma", "ablation-hot", "ablation-budget",
            "validate",
        }
        assert set(exp_mod.EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            exp_mod.run_experiment("figure9")
