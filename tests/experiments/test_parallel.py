"""Tests for the parallel grid runner and serial/parallel determinism."""

from __future__ import annotations

import os

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.cache import CACHE_DIR_ENV
from repro.experiments.parallel import (
    BACKEND_ENV,
    JOBS_ENV,
    GridRunner,
    RunSpec,
    prefetch,
    backend_choice,
    resolve_backend,
    resolve_jobs,
)
from repro.experiments.runner import (
    RunSettings,
    clear_cache,
    execute_run,
    run_benchmark,
)

GRID = [
    RunSpec("Kmeans", "A", "linux-4k"),
    RunSpec("Kmeans", "A", "thp"),
    RunSpec("Kmeans", "A", "carrefour-2m"),
]


@pytest.fixture
def fresh_env(tmp_path, monkeypatch):
    """Isolated cache dir and empty memo for grid-execution tests."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    clear_cache()
    yield
    clear_cache()


def _signature(result):
    """Everything the determinism guarantee covers, comparably packed."""
    return (
        result.runtime_s,
        tuple(result.epoch_times_s),
        result.bank.total("tlb_misses"),
        result.bank.total("page_faults_4k"),
        result.bank.total("page_faults_2m"),
        result.bank.total("time_dram_s"),
        result.bank.total("time_walk_s"),
        result.bank.total("time_ibs_s"),
        float(sum(e.traffic.sum() for e in result.bank.epochs)),
    )


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs() == 5

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        assert resolve_jobs() >= 1

    def test_minimum_one(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1
        assert resolve_jobs() >= 1

    def test_clamped_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert resolve_jobs(16) == 2
        monkeypatch.setenv(JOBS_ENV, "16")
        assert resolve_jobs() == 2

    def test_cpu_count_unknown(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        # Unknown cpu count counts as one core: auto resolves to the
        # serial backend (pool backends pessimize there), so any jobs
        # request collapses to 1; the process backend still clamps to
        # one, and thread must be requested explicitly to shard.
        assert resolve_jobs(4) == 1
        assert resolve_jobs(4, backend="process") == 1
        assert resolve_jobs(4, backend="thread") == 2


class TestResolveBackend:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        assert resolve_backend("thread") == "thread"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert resolve_backend() == "thread"
        monkeypatch.setenv(BACKEND_ENV, "PROCESS")
        assert resolve_backend() == "process"

    def test_auto_follows_core_count(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_backend() == "process"
        # One core: no pool backend can overlap anything, and the
        # thread backend measured as a slowdown there — auto falls
        # back to a plain serial loop unless thread is explicit.
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_backend() == "serial"
        assert resolve_backend("thread") == "thread"

    def test_backend_choice_reports_reason(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        backend, reason = backend_choice()
        assert backend == "serial"
        assert "cpu_count=1" in reason and "serial" in reason
        backend, reason = backend_choice("thread")
        assert backend == "thread"
        assert reason.startswith("explicit")
        monkeypatch.setenv(BACKEND_ENV, "process")
        backend, reason = backend_choice()
        assert backend == "process"
        assert BACKEND_ENV in reason

    def test_serial_backend_resolves_one_job(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(backend="serial") == 1
        assert resolve_jobs(16, backend="serial") == 1

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        with pytest.raises(ValueError):
            resolve_backend("fibers")

    def test_thread_backend_floors_at_two(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_jobs(None, backend="thread") == 2
        assert resolve_jobs(8, backend="thread") == 2
        assert resolve_jobs(1, backend="thread") == 1

    def test_thread_backend_clamps_to_cpus(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert resolve_jobs(16, backend="thread") == 4
        assert resolve_jobs(None, backend="thread") == 3


class TestGridAssembly:
    def test_dedup(self):
        grid = GridRunner(RunSettings.quick())
        grid.add("Kmeans", "A", "thp")
        grid.add("Kmeans", "A", "thp")
        grid.add("Kmeans", "A", "thp", backing_1g=True)
        assert len(grid.specs) == 2

    def test_add_grid_cross_product(self):
        grid = GridRunner(RunSettings.quick())
        grid.add_grid(["a", "b"], ["A", "B"], ["p", "q", "p"])
        assert len(grid.specs) == 2 * 2 * 2  # duplicate policy dropped

    def test_insertion_order_preserved(self):
        grid = GridRunner(RunSettings.quick())
        for spec in GRID:
            grid.add_spec(spec)
        assert grid.specs == GRID

    def test_describe(self):
        assert RunSpec("WC", "B", "thp").describe() == "WC@B/thp"
        assert (
            RunSpec("WC", "B", "linux-4k", backing_1g=True).describe()
            == "WC@B/linux-4k+1g"
        )


class TestGridExecution:
    def test_serial_jobs1(self, fresh_env):
        settings = RunSettings.quick()
        grid = GridRunner(settings)
        for spec in GRID[:2]:
            grid.add_spec(spec)
        results = grid.run(jobs=1)
        assert set(results) == set(GRID[:2])
        for result in results.values():
            assert result.runtime_s > 0

    def test_parallel_matches_serial_and_cached(self, fresh_env):
        """The acceptance guarantee: parallel == serial == cached."""
        settings = RunSettings.quick()
        serial = {
            spec: execute_run(
                spec.workload, spec.machine, spec.policy, settings, spec.backing_1g
            )
            for spec in GRID
        }

        grid = GridRunner(settings)
        for spec in GRID:
            grid.add_spec(spec)
        parallel = grid.run(jobs=2)

        for spec in GRID:
            assert _signature(parallel[spec]) == _signature(serial[spec]), spec

        # Third path: a fresh process-level view answered from the
        # persistent cache (memo cleared, entries on disk).
        clear_cache()
        for spec in GRID:
            cached = run_benchmark(
                spec.workload, spec.machine, spec.policy, settings,
                backing_1g=spec.backing_1g,
            )
            assert _signature(cached) == _signature(serial[spec]), spec

    def test_thread_backend_matches_serial(self, fresh_env):
        """In-process sharded execution is bit-identical to serial."""
        settings = RunSettings.quick()
        serial = {
            spec: execute_run(
                spec.workload, spec.machine, spec.policy, settings, spec.backing_1g
            )
            for spec in GRID
        }
        clear_cache()
        grid = GridRunner(settings, backend="thread")
        for spec in GRID:
            grid.add_spec(spec)
        threaded = grid.run(jobs=2)
        for spec in GRID:
            assert _signature(threaded[spec]) == _signature(serial[spec]), spec

    def test_results_installed_in_memo(self, fresh_env):
        settings = RunSettings.quick()
        grid = GridRunner(settings)
        grid.add_spec(GRID[0])
        grid.add_spec(GRID[1])
        results = grid.run(jobs=2)
        for spec in GRID[:2]:
            again = run_benchmark(
                spec.workload, spec.machine, spec.policy, settings
            )
            assert again is results[spec]

    def test_second_run_hits_cache(self, fresh_env, monkeypatch):
        settings = RunSettings.quick()
        grid = GridRunner(settings)
        grid.add_spec(GRID[0])
        first = grid.run(jobs=1)

        def _boom(*args, **kwargs):
            raise AssertionError("re-executed a cached spec")

        monkeypatch.setattr(runner_mod, "execute_run", _boom)
        grid2 = GridRunner(settings)
        grid2.add_spec(GRID[0])
        second = grid2.run(jobs=1)
        assert second[GRID[0]] is first[GRID[0]]  # memo hit, same object

    def test_use_cache_false_reruns(self, fresh_env):
        settings = RunSettings.quick()
        grid = GridRunner(settings)
        grid.add_spec(GRID[0])
        first = grid.run(jobs=1)
        second = GridRunner(settings).add_spec(GRID[0]).run(
            jobs=1, use_cache=False
        )
        assert second[GRID[0]] is not first[GRID[0]]
        assert _signature(second[GRID[0]]) == _signature(first[GRID[0]])


class TestPrefetch:
    def test_noop_when_serial(self, fresh_env, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        assert prefetch(GRID, RunSettings.quick()) == {}

    def test_warms_memo(self, fresh_env, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        monkeypatch.setenv(JOBS_ENV, "2")
        settings = RunSettings.quick()
        results = prefetch(GRID[:2], settings)
        assert set(results) == set(GRID[:2])
        for spec in GRID[:2]:
            assert (
                run_benchmark(spec.workload, spec.machine, spec.policy, settings)
                is results[spec]
            )

    def test_empty_grid(self, fresh_env):
        assert prefetch([], RunSettings.quick()) == {}
