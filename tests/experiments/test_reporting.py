"""Tests for report rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.reporting import Report, format_bars, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bench"], [["1", "x"], ["22", "yy"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["1"]])

    def test_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])


class TestFormatBars:
    def test_positive_and_negative(self):
        out = format_bars(["x", "y"], {"thp": [50.0, -25.0]})
        assert "+50.0%" in out
        assert "-25.0%" in out
        assert "#" in out

    def test_empty(self):
        assert format_bars([], {}) == "(no data)"

    def test_limit_clamps(self):
        out = format_bars(["x"], {"s": [1000.0]}, width=20, limit=100)
        assert "+1000.0%" in out


class TestReport:
    def test_render(self):
        report = Report(
            experiment_id="figure9",
            title="test",
            headers=["bench", "val"],
            rows=[["CG", "+1.0"]],
            notes=["a note"],
        )
        out = report.render()
        assert "figure9" in out
        assert "CG" in out
        assert "a note" in out
