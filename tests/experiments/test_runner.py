"""Tests for the experiment runner, policy registry and CLI plumbing."""

import pytest

from repro.errors import (
    ConfigurationError,
    UnknownPolicyError,
    UnknownWorkloadError,
)
from repro.core.carrefour import CarrefourPolicy
from repro.core.carrefour_lp import CarrefourLpPolicy
from repro.core.pt_replication import PtReplicationPolicy
from repro.experiments.configs import (
    POLICIES,
    make_policy,
    policy_descriptions,
)
from repro.sim.policy import PolicyStack
from repro.experiments.runner import (
    RunSettings,
    clear_cache,
    improvement,
    run_benchmark,
)
from repro.sim.policy import LinuxPolicy


class TestPolicyRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {
            "linux-4k",
            "thp",
            "carrefour-4k",
            "carrefour-2m",
            "carrefour-lp",
            "reactive-only",
            "conservative-only",
            "carrefour-lp-lwp",
            "autonuma",
            "autonuma-4k",
            "interleave-4k",
            "interleave-thp",
            "pt-remote",
            "replication",
            "pressure-reclaim",
        }

    def test_lwp_policy_flag(self):
        policy = make_policy("carrefour-lp-lwp")
        assert policy.lwp
        assert not make_policy("carrefour-lp").lwp

    def test_factory_types(self):
        assert isinstance(make_policy("linux-4k"), LinuxPolicy)
        assert isinstance(make_policy("carrefour-2m"), CarrefourPolicy)
        assert isinstance(make_policy("carrefour-lp"), CarrefourLpPolicy)

    def test_names_match(self):
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(UnknownPolicyError):
            make_policy("nope")

    def test_unknown_policy_suggests_closest(self):
        with pytest.raises(UnknownPolicyError, match="did you mean 'thp'"):
            make_policy("tph")
        with pytest.raises(
            UnknownPolicyError, match="did you mean 'carrefour-lp'"
        ):
            make_policy("carrefour_lp")

    def test_unknown_policy_without_close_match_lists_available(self):
        with pytest.raises(UnknownPolicyError, match="available:") as err:
            make_policy("zzzzzzzz")
        assert "did you mean" not in str(err.value)

    def test_reactive_only_flags(self):
        policy = make_policy("reactive-only")
        assert policy.reactive is not None
        assert policy.conservative is None

    def test_conservative_only_flags(self):
        policy = make_policy("conservative-only")
        assert policy.reactive is None
        assert policy.conservative is not None

    def test_replication_factories(self):
        assert isinstance(make_policy("pt-remote"), PtReplicationPolicy)
        assert isinstance(make_policy("replication"), PtReplicationPolicy)


class TestPolicyComposition:
    def test_plus_builds_stack(self):
        policy = make_policy("carrefour-2m+replication")
        assert isinstance(policy, PolicyStack)
        assert policy.name == "carrefour-2m+replication"
        assert [m.name for m in policy.members] == [
            "carrefour-2m",
            "replication",
        ]

    def test_members_get_the_seed(self):
        policy = make_policy("carrefour-2m+replication", seed=7)
        assert isinstance(policy.members[0], CarrefourPolicy)

    def test_empty_member_rejected(self):
        with pytest.raises(ConfigurationError, match="empty member"):
            make_policy("thp++replication")
        with pytest.raises(ConfigurationError, match="empty member"):
            make_policy("thp+")

    def test_duplicate_member_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate member"):
            make_policy("thp+thp")

    def test_unknown_member_names_the_culprit(self):
        with pytest.raises(UnknownPolicyError, match="replicatio"):
            make_policy("thp+replicatio")

    def test_stack_wants_ibs_if_any_member_does(self):
        assert make_policy("carrefour-2m+replication").wants_ibs()
        assert not make_policy("thp+replication").wants_ibs()


class TestPolicyDescriptions:
    def test_every_policy_documented(self):
        descriptions = policy_descriptions()
        assert set(descriptions) == set(POLICIES)
        for name, text in descriptions.items():
            assert text and text != "(undocumented)", name

    def test_descriptions_reference_the_paper_labels(self):
        descriptions = policy_descriptions()
        assert "Linux" in descriptions["linux-4k"]
        assert "Mitosis" in descriptions["replication"]


class TestRunner:
    def test_run_benchmark_cached(self, quick_settings):
        a = run_benchmark("Kmeans", "A", "linux-4k", quick_settings)
        b = run_benchmark("Kmeans", "A", "linux-4k", quick_settings)
        assert a is b  # memoised

    def test_cache_key_distinguishes_policy(self, quick_settings):
        a = run_benchmark("Kmeans", "A", "linux-4k", quick_settings)
        b = run_benchmark("Kmeans", "A", "thp", quick_settings)
        assert a is not b

    def test_no_cache_option(self, quick_settings):
        a = run_benchmark("Kmeans", "A", "linux-4k", quick_settings)
        b = run_benchmark(
            "Kmeans", "A", "linux-4k", quick_settings, use_cache=False
        )
        assert a is not b
        assert a.runtime_s == b.runtime_s  # but deterministic

    def test_improvement_signs(self, quick_settings):
        imp = improvement("Kmeans", "A", "linux-4k", "linux-4k", quick_settings)
        assert imp == pytest.approx(0.0)

    def test_unknown_workload(self, quick_settings):
        with pytest.raises(UnknownWorkloadError):
            run_benchmark("nope", "A", "thp", quick_settings)

    def test_settings_default(self):
        settings = RunSettings()
        assert settings.config.scale == 1.0

    def test_clear_cache(self, quick_settings):
        a = run_benchmark("Kmeans", "A", "linux-4k", quick_settings)
        clear_cache()
        b = run_benchmark("Kmeans", "A", "linux-4k", quick_settings)
        assert a is not b
