"""Thread-backend stress tests: sharded execution stays race-free.

The static rules R105-R108 prove the memo layers are lock-disciplined;
these tests exercise the same paths dynamically.  The stress test runs
the reference 4-cell grid over the in-process thread backend at four
shards, repeatedly, and demands bit-identical results and fingerprints
against the serial run — any write race in the runner memo or the
shared stream banks shows up as a signature mismatch (or a crash).
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.cache import CACHE_DIR_ENV
from repro.experiments.parallel import GridRunner, RunSpec
from repro.experiments.runner import (
    RunSettings,
    clear_cache,
    execute_run,
    run_benchmark,
    store_result,
)

#: The reference grid: one workload under four placement policies, the
#: shape every figure driver fans out.
GRID = [
    RunSpec("Kmeans", "A", "linux-4k"),
    RunSpec("Kmeans", "A", "thp"),
    RunSpec("Kmeans", "A", "carrefour-2m"),
    RunSpec("Kmeans", "A", "autonuma"),
]

STRESS_ROUNDS = 3


@pytest.fixture
def fresh_env(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    clear_cache()
    yield
    clear_cache()


def _signature(result):
    return (
        result.runtime_s,
        tuple(result.epoch_times_s),
        result.bank.total("tlb_misses"),
        result.bank.total("page_faults_4k"),
        result.bank.total("page_faults_2m"),
        result.bank.total("time_dram_s"),
        result.bank.total("time_walk_s"),
        result.bank.total("time_ibs_s"),
        float(sum(e.traffic.sum() for e in result.bank.epochs)),
    )


def test_thread_stress_bit_identical(fresh_env, monkeypatch):
    """4 shards x repeated rounds == serial, bit for bit."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    settings = RunSettings.quick()
    expected = {}
    fingerprints = {}
    for spec in GRID:
        result = execute_run(
            spec.workload, spec.machine, spec.policy, settings, spec.backing_1g
        )
        expected[spec] = _signature(result)
        fingerprints[spec] = settings.fingerprint(
            spec.workload, "machine-A", spec.policy, spec.backing_1g
        )

    for _ in range(STRESS_ROUNDS):
        clear_cache()
        grid = GridRunner(settings, backend="thread")
        for spec in GRID:
            grid.add_spec(spec)
        # use_cache=False forces every shard to execute, so each round
        # genuinely overlaps four simulations in one process.
        results = grid.run(jobs=4, use_cache=False)
        for spec in GRID:
            assert _signature(results[spec]) == expected[spec], spec
            # The run identity threads never touch stays stable too.
            assert (
                settings.fingerprint(
                    spec.workload, "machine-A", spec.policy, spec.backing_1g
                )
                == fingerprints[spec]
            )


def test_memo_layer_survives_concurrent_stores(fresh_env):
    """store_result / run_benchmark hammered from many threads.

    Regression for the unguarded ``_CACHE[key] = result`` write (R105):
    every store must land and reads must never see a torn state.
    """
    settings = RunSettings.quick()
    result = execute_run("Kmeans", "A", "thp", settings, False)
    n_threads, n_keys = 8, 50
    start = threading.Barrier(n_threads)
    errors = []

    def hammer(worker):
        start.wait()
        try:
            for i in range(n_keys):
                store_result(
                    "Kmeans", f"m{worker}-{i}", "thp", settings, False,
                    result, persist=False,
                )
                again = run_benchmark("Kmeans", "A", "thp", settings)
                assert _signature(again) == _signature(result)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    store_result("Kmeans", "machine-A", "thp", settings, False, result,
                 persist=False)
    threads = [
        threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    with runner_mod._MEMO_LOCK:
        stored = len(runner_mod._CACHE)
    assert stored == n_threads * n_keys + 1
