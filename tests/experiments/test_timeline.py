"""Tests for the per-epoch timeline utilities."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.timeline import (
    convergence_epoch,
    epoch_series,
    render_timeline,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁"
        assert s[-1] == "█"
        assert len(s) == 4

    def test_explicit_bounds(self):
        s = sparkline([50], lo=0, hi=100)
        assert s in "▃▄▅"


class TestConvergence:
    def test_settles(self):
        assert convergence_epoch([50, 40, 10, 5, 5], target=15) == 2

    def test_never_settles(self):
        assert convergence_epoch([50, 10, 50], target=15) == -1

    def test_above_mode(self):
        assert convergence_epoch([10, 20, 90, 95], target=80, below=False) == 2

    def test_immediately_good(self):
        assert convergence_epoch([1, 2, 3], target=15) == 0


class TestEpochSeries:
    def test_series_from_run(self, run):
        result = run("CG.D", "B", "carrefour-lp")
        series = epoch_series(result)
        assert len(series) == len(result.epoch_times_s)
        assert all(0 <= v <= 100 for v in series.lar_pct)
        assert all(v >= 0 for v in series.imbalance_pct)
        # The LP daemon split pages at some point.
        assert sum(series.splits_2m) > 0

    def test_imbalance_trajectory_improves(self, run):
        result = run("CG.D", "B", "carrefour-lp")
        series = epoch_series(result)
        # Early epochs are imbalanced (THP start), late ones are fixed.
        assert series.imbalance_pct[0] > series.imbalance_pct[-1] + 15

    def test_thp_trajectory_flat(self, run):
        result = run("CG.D", "B", "thp")
        series = epoch_series(result)
        assert min(series.imbalance_pct) > 40

    def test_render(self, run):
        result = run("CG.D", "B", "carrefour-lp")
        text = render_timeline(result)
        assert "imbalance" in text
        assert "S" in text  # split marker
        assert "CG.D" in text
