"""Tests for the paper-data transcription and the claim validator."""

import pytest

from repro.experiments import paper_data
from repro.experiments.validation import _CHECKS, validate, validate_claims
from repro.workloads.registry import FIGURE1_ORDER


class TestPaperData:
    def test_every_claim_has_a_check(self):
        for claim in paper_data.CLAIMS:
            assert claim.claim_id in _CHECKS

    def test_no_orphan_checks(self):
        claim_ids = {c.claim_id for c in paper_data.CLAIMS}
        assert set(_CHECKS) == claim_ids

    def test_table1_cases_are_known_benchmarks(self):
        for key in paper_data.TABLE1:
            bench, machine = key.split("@")
            assert bench in FIGURE1_ORDER
            assert machine in ("A", "B")

    def test_table1_signature_values(self):
        # Spot-check the transcription against the paper's text.
        assert paper_data.TABLE1["CG.D@B"]["perf_improvement"] == -43.0
        assert paper_data.TABLE1["CG.D@B"]["imbalance"]["thp"] == 59.0
        assert paper_data.TABLE1["WC@B"]["fault_pct"]["linux"] == 37.6
        assert paper_data.TABLE1["SSCA.20@A"]["l2walk"]["linux"] == 15.0

    def test_table2_hot_pages(self):
        assert paper_data.TABLE2["CG.D"]["nhp"]["thp"] == 3
        assert paper_data.TABLE2["UA.B"]["psp"]["thp"] == 70.0

    def test_table3_recoveries(self):
        assert paper_data.TABLE3["CG.D@B"]["imbalance"]["carrefour-lp"] == 3
        assert paper_data.TABLE3["UA.B@A"]["lar"]["carrefour-lp"] == 85

    def test_figure1_callouts(self):
        assert paper_data.FIGURE1_CALLOUTS[("WC", "B")] == 109.0
        assert paper_data.FIGURE1_CALLOUTS[("CG.D", "B")] == -43.0


class TestValidation:
    def test_all_claims_pass_at_quick_scale(self, quick_settings):
        results = validate_claims(quick_settings)
        failing = [r.claim_id for r in results if not r.passed]
        assert not failing, f"claims failing: {failing}"

    def test_report_structure(self, quick_settings):
        report = validate(quick_settings)
        assert report.experiment_id == "validate"
        assert len(report.rows) == len(paper_data.CLAIMS)
        assert "14/14" in report.title
