"""Tests for the Che/LRU cache approximation, including properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.caches import (
    CacheModel,
    che_characteristic_time,
    che_characteristic_time_grouped,
    lru_group_hit_rates,
    lru_hit_rate,
    lru_hit_rate_grouped,
)


class TestCharacteristicTime:
    def test_fits_in_cache_is_infinite(self):
        assert np.isinf(che_characteristic_time(np.ones(10), 10))
        assert np.isinf(che_characteristic_time(np.ones(5), 100))

    def test_empty_popularity(self):
        assert np.isinf(che_characteristic_time(np.zeros(0), 4))

    def test_zero_entries_ignored(self):
        pop = np.array([1.0, 0.0, 1.0])
        assert np.isinf(che_characteristic_time(pop, 2))

    def test_finite_when_overcommitted(self):
        t = che_characteristic_time(np.ones(1000), 100)
        assert np.isfinite(t)
        assert t > 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            che_characteristic_time(np.ones(10), 0)

    def test_negative_popularity_rejected(self):
        with pytest.raises(ConfigurationError):
            che_characteristic_time(np.array([1.0, -1.0]), 4)

    def test_2d_popularity_rejected(self):
        with pytest.raises(ConfigurationError):
            che_characteristic_time(np.ones((2, 2)), 4)


class TestLruHitRate:
    def test_uniform_matches_closed_form(self):
        # For uniform popularity over U items and capacity C << U the
        # LRU hit rate approaches C/U.
        rate = lru_hit_rate(np.ones(1000), 100)
        assert rate == pytest.approx(0.1, abs=0.02)

    def test_all_fits(self):
        assert lru_hit_rate(np.ones(16), 64) == 1.0

    def test_skew_improves_hit_rate(self):
        uniform = lru_hit_rate(np.ones(1000), 50)
        ranks = np.arange(1, 1001, dtype=float)
        zipf = lru_hit_rate(1.0 / ranks, 50)
        assert zipf > uniform

    def test_empty_is_perfect(self):
        assert lru_hit_rate(np.zeros(0), 16) == 1.0

    @given(
        n=st.integers(min_value=1, max_value=2000),
        cap=st.integers(min_value=1, max_value=512),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_property(self, n, cap, seed):
        rng = np.random.default_rng(seed)
        pop = rng.random(n) + 1e-9
        rate = lru_hit_rate(pop, cap)
        assert 0.0 <= rate <= 1.0

    @given(cap=st.integers(min_value=1, max_value=256))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_capacity(self, cap):
        pop = 1.0 / np.arange(1, 501, dtype=float)
        assert lru_hit_rate(pop, cap + 32) >= lru_hit_rate(pop, cap) - 1e-9


class TestGroupedForms:
    def test_grouped_matches_flat_uniform(self):
        flat = lru_hit_rate(np.ones(1000), 64)
        grouped = lru_hit_rate_grouped(np.array([1000.0]), np.array([1.0]), 64)
        assert grouped == pytest.approx(flat, abs=1e-6)

    def test_grouped_matches_flat_two_groups(self):
        # 100 hot items carrying 80% of traffic + 900 cold items.
        pop = np.concatenate([np.full(100, 0.8 / 100), np.full(900, 0.2 / 900)])
        flat = lru_hit_rate(pop, 128)
        grouped = lru_hit_rate_grouped(
            np.array([100.0, 900.0]), np.array([0.8, 0.2]), 128
        )
        assert grouped == pytest.approx(flat, abs=1e-6)

    def test_grouped_char_time_all_fits(self):
        t = che_characteristic_time_grouped(
            np.array([4.0, 4.0]), np.array([0.5, 0.5]), 16
        )
        assert np.isinf(t)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            che_characteristic_time_grouped(np.ones(2), np.ones(3), 4)

    def test_per_group_hit_rates_align(self):
        counts = np.array([10.0, 1000.0])
        weights = np.array([0.9, 0.1])
        rates = lru_group_hit_rates(counts, weights, 64)
        assert rates.shape == (2,)
        # The small hot group should hit far more often than the big
        # cold one.
        assert rates[0] > rates[1]

    def test_per_group_dead_groups_hit(self):
        counts = np.array([0.0, 100.0])
        weights = np.array([0.5, 0.0])
        rates = lru_group_hit_rates(counts, weights, 16)
        assert rates[0] == 1.0
        assert rates[1] == 1.0

    @given(
        hot=st.integers(min_value=1, max_value=200),
        cold=st.integers(min_value=1, max_value=5000),
        cap=st.integers(min_value=8, max_value=512),
    )
    @settings(max_examples=40, deadline=None)
    def test_grouped_bounds_property(self, hot, cold, cap):
        rates = lru_group_hit_rates(
            np.array([hot, cold], dtype=float), np.array([0.7, 0.3]), cap
        )
        assert np.all(rates >= 0.0) and np.all(rates <= 1.0)


class TestCacheModel:
    def test_small_pte_set_hits(self):
        model = CacheModel(l2_lines_for_walks=512)
        assert model.walk_l2_miss_rate(np.ones(100)) == pytest.approx(0.0, abs=0.05)

    def test_huge_pte_set_misses(self):
        model = CacheModel(l2_lines_for_walks=512)
        assert model.walk_l2_miss_rate(np.ones(100_000)) > 0.8

    def test_empty_counts(self):
        model = CacheModel()
        assert model.walk_l2_miss_rate(np.zeros(0)) == 0.0

    def test_grouped_matches_flat(self):
        model = CacheModel(l2_lines_for_walks=256)
        flat = model.walk_l2_miss_rate(np.ones(8000))
        grouped = model.walk_l2_miss_rate_grouped(
            np.array([8000.0]), np.array([1.0])
        )
        assert grouped == pytest.approx(flat, abs=0.02)

    def test_grouped_empty(self):
        model = CacheModel()
        assert model.walk_l2_miss_rate_grouped(np.zeros(0), np.zeros(0)) == 0.0

    def test_miss_rate_monotone_in_working_set(self):
        model = CacheModel(l2_lines_for_walks=512)
        small = model.walk_l2_miss_rate_grouped(np.array([1e3]), np.array([1.0]))
        big = model.walk_l2_miss_rate_grouped(np.array([1e6]), np.array([1.0]))
        assert big >= small
