"""Tests for performance-counter accounting and derived metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank, EpochCounters, merge_banks


def make_epoch(epoch=0, traffic=None, duration=1.0, **kwargs):
    if traffic is None:
        traffic = np.zeros((2, 2))
    return EpochCounters(epoch=epoch, duration_s=duration, traffic=traffic, **kwargs)


class TestEpochCounters:
    def test_requests(self):
        e = make_epoch(traffic=np.array([[3.0, 1.0], [2.0, 4.0]]))
        assert e.dram_requests == 10.0
        assert e.local_requests == 7.0

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            make_epoch(traffic=np.zeros((2, 3)))

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            make_epoch(duration=-1.0)


class TestCounterBank:
    def test_lar(self):
        bank = CounterBank(2, 4)
        bank.add(make_epoch(traffic=np.array([[8.0, 2.0], [2.0, 8.0]])))
        assert bank.lar() == pytest.approx(80.0)

    def test_lar_empty_bank(self):
        assert CounterBank(2, 4).lar() == 100.0

    def test_imbalance_balanced(self):
        bank = CounterBank(2, 4)
        bank.add(make_epoch(traffic=np.array([[5.0, 0.0], [0.0, 5.0]])))
        assert bank.imbalance() == pytest.approx(0.0)

    def test_imbalance_skewed(self):
        bank = CounterBank(2, 4)
        # All traffic to controller 0: per-controller [10, 0].
        bank.add(make_epoch(traffic=np.array([[10.0, 0.0], [0.0, 0.0]])))
        assert bank.imbalance() == pytest.approx(100.0)

    def test_wrong_shape_rejected(self):
        bank = CounterBank(3, 4)
        with pytest.raises(ConfigurationError):
            bank.add(make_epoch(traffic=np.zeros((2, 2))))

    def test_pct_l2_walks(self):
        bank = CounterBank(2, 4)
        bank.add(make_epoch(walk_l2_misses=10.0, l2_data_misses=90.0))
        assert bank.pct_l2_misses_from_walks() == pytest.approx(10.0)

    def test_pct_l2_walks_no_misses(self):
        assert CounterBank(2, 4).pct_l2_misses_from_walks() == 0.0

    def test_max_fault_fraction(self):
        bank = CounterBank(2, 4)
        bank.add(
            make_epoch(
                duration=2.0,
                fault_time_per_core_s=np.array([0.2, 1.0, 0.0, 0.0]),
            )
        )
        assert bank.max_fault_time_fraction() == pytest.approx(50.0)

    def test_total_fault_time(self):
        bank = CounterBank(2, 4)
        bank.add(make_epoch(fault_time_per_core_s=np.array([0.1, 0.2, 0.0, 0.0])))
        bank.add(make_epoch(epoch=1, fault_time_per_core_s=np.array([0.1, 0.0, 0.0, 0.0])))
        assert bank.total_fault_time_s() == pytest.approx(0.4)

    def test_window_selects_epochs(self):
        bank = CounterBank(2, 4)
        for i in range(5):
            bank.add(make_epoch(epoch=i, l2_data_misses=float(i)))
        window = bank.window(2, 4)
        assert [e.epoch for e in window.epochs] == [2, 3]
        assert window.total("l2_data_misses") == 5.0

    def test_window_open_ended(self):
        bank = CounterBank(2, 4)
        for i in range(4):
            bank.add(make_epoch(epoch=i))
        assert len(bank.window(2).epochs) == 2

    def test_maptu(self):
        bank = CounterBank(2, 4)
        bank.add(make_epoch(duration=1.0, l2_data_misses=5e8))
        assert bank.maptu() == pytest.approx(500.0)

    def test_time_breakdown(self):
        bank = CounterBank(2, 4)
        bank.add(make_epoch(time_cpu_s=1.0, time_dram_s=2.0))
        bank.add(make_epoch(epoch=1, time_cpu_s=1.0, time_walk_s=0.5))
        bd = bank.time_breakdown()
        assert bd["cpu"] == pytest.approx(2.0)
        assert bd["dram"] == pytest.approx(2.0)
        assert bd["walk"] == pytest.approx(0.5)

    def test_describe_runs(self):
        bank = CounterBank(2, 4)
        bank.add(make_epoch())
        assert "epochs" in bank.describe()


class TestMergeBanks:
    def test_merge(self):
        a = CounterBank(2, 4)
        a.add(make_epoch(epoch=0))
        b = CounterBank(2, 4)
        b.add(make_epoch(epoch=1))
        merged = merge_banks([a, b])
        assert len(merged.epochs) == 2

    def test_merge_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_banks([])

    def test_merge_shape_mismatch(self):
        a = CounterBank(2, 4)
        b = CounterBank(3, 4)
        with pytest.raises(ConfigurationError):
            merge_banks([a, b])
