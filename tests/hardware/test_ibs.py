"""Tests for the IBS-style sampling engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.ibs import IbsEngine, IbsSamples


def make_stream(n=1000, nodes=2, seed=0):
    rng = np.random.default_rng(seed)
    granules = rng.integers(0, 10_000, size=n)
    homes = rng.integers(0, nodes, size=n).astype(np.int8)
    return granules, homes


class TestIbsSamples:
    def test_empty(self):
        s = IbsSamples.empty()
        assert len(s) == 0

    def test_concatenate_empty(self):
        assert len(IbsSamples.concatenate([])) == 0

    def test_concatenate(self):
        a = IbsSamples(
            granule=np.array([1]),
            accessing_node=np.array([0], dtype=np.int8),
            home_node=np.array([1], dtype=np.int8),
            thread=np.array([0], dtype=np.int16),
            from_dram=np.array([True]),
        )
        combined = IbsSamples.concatenate([a, a])
        assert len(combined) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            IbsSamples(
                granule=np.array([1, 2]),
                accessing_node=np.array([0], dtype=np.int8),
                home_node=np.array([1], dtype=np.int8),
                thread=np.array([0], dtype=np.int16),
                from_dram=np.array([True]),
            )


class TestIbsEngine:
    def test_zero_rate_collects_nothing(self):
        engine = IbsEngine(n_nodes=2, rate=0.0)
        g, h = make_stream()
        n = engine.record_epoch(0, 0, g, h, 1e6, np.random.default_rng(0))
        assert n == 0
        assert len(engine.drain()) == 0

    def test_expected_sample_count(self):
        engine = IbsEngine(n_nodes=2, rate=1e-3)
        rng = np.random.default_rng(1)
        total = 0
        for i in range(50):
            g, h = make_stream(seed=i)
            total += engine.record_epoch(0, 0, g, h, 1e5, rng)
        # Expectation: 50 epochs x 1e5 represented x 1e-3 = 5000, but
        # capped at the stream length (1000) per epoch.
        assert 2000 < total <= 50_000

    def test_samples_reflect_stream(self):
        engine = IbsEngine(n_nodes=2, rate=0.5)
        g = np.full(100, 42, dtype=np.int64)
        h = np.ones(100, dtype=np.int8)
        engine.record_epoch(3, 1, g, h, 100, np.random.default_rng(0))
        samples = engine.drain()
        assert len(samples) > 0
        assert np.all(samples.granule == 42)
        assert np.all(samples.home_node == 1)
        assert np.all(samples.accessing_node == 1)
        assert np.all(samples.thread == 3)
        assert np.all(samples.from_dram)

    def test_drain_clears(self):
        engine = IbsEngine(n_nodes=2, rate=0.5)
        g, h = make_stream()
        engine.record_epoch(0, 0, g, h, 1000, np.random.default_rng(0))
        assert len(engine.drain()) > 0
        assert len(engine.drain()) == 0
        assert engine.pending_samples == 0

    def test_per_node_buffers(self):
        engine = IbsEngine(n_nodes=4, rate=0.5)
        g, h = make_stream(nodes=4)
        rng = np.random.default_rng(0)
        for node in range(4):
            engine.record_epoch(node, node, g, h, 1000, rng)
        samples = engine.drain()
        assert set(np.unique(samples.accessing_node)) == {0, 1, 2, 3}

    def test_invalid_node_rejected(self):
        engine = IbsEngine(n_nodes=2, rate=0.5)
        g, h = make_stream()
        with pytest.raises(ConfigurationError):
            engine.record_epoch(0, 5, g, h, 1000, np.random.default_rng(0))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            IbsEngine(n_nodes=2, rate=1.5)

    def test_overhead_seconds(self):
        engine = IbsEngine(n_nodes=2, rate=0.1, cost_cycles_per_sample=2000)
        assert engine.overhead_seconds(1000, 2e9) == pytest.approx(1e-3)

    def test_overhead_negative_rejected(self):
        engine = IbsEngine(n_nodes=2)
        with pytest.raises(ConfigurationError):
            engine.overhead_seconds(-1, 2e9)

    @given(rate=st.floats(min_value=1e-5, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_sample_count_bounded_by_stream(self, rate):
        engine = IbsEngine(n_nodes=2, rate=rate)
        g, h = make_stream(n=200)
        n = engine.record_epoch(0, 0, g, h, 1e9, np.random.default_rng(0))
        assert n <= 200
