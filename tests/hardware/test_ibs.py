"""Tests for the IBS-style sampling engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.ibs import IbsEngine, IbsSamples


def make_stream(n=1000, nodes=2, seed=0):
    rng = np.random.default_rng(seed)
    granules = rng.integers(0, 10_000, size=n)
    homes = rng.integers(0, nodes, size=n).astype(np.int8)
    return granules, homes


class TestIbsSamples:
    def test_empty(self):
        s = IbsSamples.empty()
        assert len(s) == 0

    def test_concatenate_empty(self):
        assert len(IbsSamples.concatenate([])) == 0

    def test_concatenate(self):
        a = IbsSamples(
            granule=np.array([1]),
            accessing_node=np.array([0], dtype=np.int8),
            home_node=np.array([1], dtype=np.int8),
            thread=np.array([0], dtype=np.int16),
            from_dram=np.array([True]),
        )
        combined = IbsSamples.concatenate([a, a])
        assert len(combined) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            IbsSamples(
                granule=np.array([1, 2]),
                accessing_node=np.array([0], dtype=np.int8),
                home_node=np.array([1], dtype=np.int8),
                thread=np.array([0], dtype=np.int16),
                from_dram=np.array([True]),
            )


class TestIbsEngine:
    def test_zero_rate_collects_nothing(self):
        engine = IbsEngine(n_nodes=2, rate=0.0)
        g, h = make_stream()
        n = engine.record_epoch(0, 0, g, h, 1e6, np.random.default_rng(0))
        assert n == 0
        assert len(engine.drain()) == 0

    def test_expected_sample_count(self):
        engine = IbsEngine(n_nodes=2, rate=1e-3)
        rng = np.random.default_rng(1)
        total = 0
        for i in range(50):
            g, h = make_stream(seed=i)
            total += engine.record_epoch(0, 0, g, h, 1e5, rng)
        # Expectation: 50 epochs x 1e5 represented x 1e-3 = 5000, but
        # capped at the stream length (1000) per epoch.
        assert 2000 < total <= 50_000

    def test_samples_reflect_stream(self):
        engine = IbsEngine(n_nodes=2, rate=0.5)
        g = np.full(100, 42, dtype=np.int64)
        h = np.ones(100, dtype=np.int8)
        engine.record_epoch(3, 1, g, h, 100, np.random.default_rng(0))
        samples = engine.drain()
        assert len(samples) > 0
        assert np.all(samples.granule == 42)
        assert np.all(samples.home_node == 1)
        assert np.all(samples.accessing_node == 1)
        assert np.all(samples.thread == 3)
        assert np.all(samples.from_dram)

    def test_drain_clears(self):
        engine = IbsEngine(n_nodes=2, rate=0.5)
        g, h = make_stream()
        engine.record_epoch(0, 0, g, h, 1000, np.random.default_rng(0))
        assert len(engine.drain()) > 0
        assert len(engine.drain()) == 0
        assert engine.pending_samples == 0

    def test_per_node_buffers(self):
        engine = IbsEngine(n_nodes=4, rate=0.5)
        g, h = make_stream(nodes=4)
        rng = np.random.default_rng(0)
        for node in range(4):
            engine.record_epoch(node, node, g, h, 1000, rng)
        samples = engine.drain()
        assert set(np.unique(samples.accessing_node)) == {0, 1, 2, 3}

    def test_invalid_node_rejected(self):
        engine = IbsEngine(n_nodes=2, rate=0.5)
        g, h = make_stream()
        with pytest.raises(ConfigurationError):
            engine.record_epoch(0, 5, g, h, 1000, np.random.default_rng(0))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            IbsEngine(n_nodes=2, rate=1.5)

    def test_overhead_seconds(self):
        engine = IbsEngine(n_nodes=2, rate=0.1, cost_cycles_per_sample=2000)
        assert engine.overhead_seconds(1000, 2e9) == pytest.approx(1e-3)

    def test_overhead_negative_rejected(self):
        engine = IbsEngine(n_nodes=2)
        with pytest.raises(ConfigurationError):
            engine.overhead_seconds(-1, 2e9)

    @given(rate=st.floats(min_value=1e-5, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_sample_count_bounded_by_stream(self, rate):
        engine = IbsEngine(n_nodes=2, rate=rate)
        g, h = make_stream(n=200)
        n = engine.record_epoch(0, 0, g, h, 1e9, np.random.default_rng(0))
        assert n <= 200


def _sample_tuples(samples):
    return list(
        zip(
            samples.granule.tolist(),
            samples.accessing_node.tolist(),
            samples.home_node.tolist(),
            samples.thread.tolist(),
            samples.from_dram.tolist(),
            samples.is_write.tolist(),
        )
    )


class TestRecordEpochBatch:
    """record_epoch_batch must be bit-identical to per-thread calls."""

    @staticmethod
    def _epoch_matrices(n_threads, length, seed, n_nodes=2):
        rng = np.random.default_rng(seed)
        sizes = rng.integers(1, length + 1, size=n_threads)
        sizes[0] = 0  # one inactive thread
        streams = np.zeros((n_threads, length), dtype=np.int64)
        homes = np.zeros((n_threads, length), dtype=np.int64)
        writes = np.zeros((n_threads, length), dtype=bool)
        for t in range(n_threads):
            n = int(sizes[t])
            streams[t, :n] = rng.integers(0, 10_000, size=n)
            homes[t, :n] = rng.integers(0, n_nodes, size=n)
            writes[t, :n] = rng.random(n) < 0.3
        nodes = rng.integers(0, n_nodes, size=n_threads)
        return sizes, streams, homes, writes, nodes

    def test_matches_sequential_record_epoch(self):
        n_threads, length = 6, 300
        sizes, streams, homes, writes, nodes = self._epoch_matrices(
            n_threads, length, seed=7
        )
        represented = 5e5

        seq = IbsEngine(n_nodes=2, rate=1e-3)
        rngs = [np.random.default_rng(1000 + t) for t in range(n_threads)]
        seq_counts = np.zeros(n_threads, dtype=np.int64)
        for t in np.flatnonzero(sizes > 0):
            n = int(sizes[t])
            seq_counts[t] = seq.record_epoch(
                int(t),
                int(nodes[t]),
                streams[t, :n],
                homes[t, :n],
                represented,
                rngs[t],
                writes=writes[t, :n],
            )

        batch = IbsEngine(n_nodes=2, rate=1e-3)
        rngs = [np.random.default_rng(1000 + t) for t in range(n_threads)]
        batch_counts = batch.record_epoch_batch(
            np.flatnonzero(sizes > 0),
            nodes,
            streams,
            homes,
            writes,
            sizes,
            represented,
            rngs,
        )

        assert np.array_equal(seq_counts, batch_counts)
        assert seq.pending_samples == batch.pending_samples
        assert _sample_tuples(seq.drain()) == _sample_tuples(batch.drain())

    def test_zero_rate_draws_nothing(self):
        sizes, streams, homes, writes, nodes = self._epoch_matrices(3, 50, seed=1)
        engine = IbsEngine(n_nodes=2, rate=0.0)
        rngs = [np.random.default_rng(t) for t in range(3)]
        counts = engine.record_epoch_batch(
            np.flatnonzero(sizes > 0), nodes, streams, homes, writes, sizes, 1e6, rngs
        )
        assert counts.sum() == 0
        # The RNGs must be untouched (rate gating happens before draws).
        assert rngs[1].integers(0, 100) == np.random.default_rng(1).integers(0, 100)

    def test_invalid_node_rejected(self):
        sizes, streams, homes, writes, nodes = self._epoch_matrices(3, 50, seed=2)
        nodes[:] = 9
        engine = IbsEngine(n_nodes=2, rate=0.5)
        rngs = [np.random.default_rng(t) for t in range(3)]
        with pytest.raises(ConfigurationError):
            engine.record_epoch_batch(
                np.flatnonzero(sizes > 0),
                nodes,
                streams,
                homes,
                writes,
                sizes,
                1e6,
                rngs,
            )

    def test_store_growth_across_epochs(self):
        # Many small appends must survive buffer growth and drain once,
        # in append order, with correct dtypes.
        engine = IbsEngine(n_nodes=2, rate=1.0)
        rng = np.random.default_rng(3)
        expected = 0
        for epoch in range(40):
            g = np.arange(50, dtype=np.int64) + epoch
            h = np.zeros(50, dtype=np.int8)
            expected += engine.record_epoch(epoch % 7, 0, g, h, 50, rng)
        assert engine.pending_samples == expected
        samples = engine.drain()
        assert len(samples) == expected
        assert samples.granule.dtype == np.int64
        assert samples.thread.dtype == np.int16
        assert samples.home_node.dtype == np.int8
        assert samples.accessing_node.dtype == np.int8
        assert engine.pending_samples == 0
        assert len(engine.drain()) == 0
