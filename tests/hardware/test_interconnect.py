"""Tests for the interconnect latency/congestion model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.interconnect import InterconnectModel
from repro.hardware.machines import machine_a


@pytest.fixture
def topo():
    return machine_a()


class TestValidation:
    def test_defaults_ok(self):
        InterconnectModel()

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel(link_capacity_requests_per_sec=0)

    def test_cap_below_hop(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel(hop_latency_cycles=100, max_hop_latency_cycles=50)

    def test_non_square_traffic_rejected(self):
        model = InterconnectModel()
        with pytest.raises(ConfigurationError):
            model.link_utilisation(np.zeros((2, 3)))


class TestHopLatency:
    def test_local_is_free(self, topo):
        model = InterconnectModel()
        matrix = model.hop_latency_matrix(topo, np.zeros((4, 4)))
        assert np.all(np.diag(matrix) == 0)

    def test_idle_latency_scales_with_hops(self, topo):
        model = InterconnectModel(hop_latency_cycles=60)
        matrix = model.hop_latency_matrix(topo, np.zeros((4, 4)))
        for src in range(4):
            for dst in range(4):
                assert matrix[src, dst] == pytest.approx(
                    60.0 * topo.hops(src, dst)
                )

    def test_congestion_raises_latency(self, topo):
        model = InterconnectModel()
        idle = model.hop_latency_matrix(topo, np.zeros((4, 4)))
        traffic = np.full((4, 4), model.link_capacity_requests_per_sec / 8)
        np.fill_diagonal(traffic, 0)
        loaded = model.hop_latency_matrix(topo, traffic)
        off_diag = ~np.eye(4, dtype=bool)
        assert np.all(loaded[off_diag] > idle[off_diag])

    def test_local_traffic_does_not_congest(self, topo):
        model = InterconnectModel()
        traffic = np.diag(np.full(4, 1e12))
        util = model.link_utilisation(traffic)
        assert np.allclose(util, 0.0)

    def test_hop_latency_capped(self, topo):
        model = InterconnectModel(max_hop_latency_cycles=300)
        traffic = np.full((4, 4), 1e12)
        np.fill_diagonal(traffic, 0)
        matrix = model.hop_latency_matrix(topo, traffic)
        assert matrix.max() <= 300 * topo.hop_matrix.max() + 1e-9

    def test_utilisation_counts_both_directions(self):
        model = InterconnectModel(link_capacity_requests_per_sec=100.0)
        traffic = np.array([[0.0, 30.0], [10.0, 0.0]])
        util = model.link_utilisation(traffic)
        # Node 0 sends 30 and receives 10 -> 40 total.
        assert util[0] == pytest.approx(0.4)
        assert util[1] == pytest.approx(0.4)
