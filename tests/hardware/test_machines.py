"""Tests for the machine A / machine B presets (paper Section 2.1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.machines import machine_a, machine_b, machine_by_name

GIB = 1024**3


class TestMachineA:
    def test_shape(self):
        topo = machine_a()
        assert topo.n_nodes == 4
        assert topo.n_cores == 24
        assert all(node.n_cores == 6 for node in topo.nodes)

    def test_dram(self):
        topo = machine_a()
        assert all(node.dram_bytes == 12 * GIB for node in topo.nodes)

    def test_frequency(self):
        assert machine_a().cpu_freq_hz == pytest.approx(1.7e9)

    def test_hop_matrix_valid(self):
        topo = machine_a()
        hops = topo.hop_matrix
        assert np.array_equal(hops, hops.T)
        assert np.all(np.diag(hops) == 0)
        assert hops.max() <= 2


class TestMachineB:
    def test_shape(self):
        topo = machine_b()
        assert topo.n_nodes == 8
        assert topo.n_cores == 64
        assert all(node.n_cores == 8 for node in topo.nodes)

    def test_dram(self):
        topo = machine_b()
        assert topo.total_dram_bytes == 512 * GIB

    def test_hops_bounded(self):
        topo = machine_b()
        off_diag = topo.hop_matrix[~np.eye(8, dtype=bool)]
        assert off_diag.min() >= 1
        assert off_diag.max() <= 3

    def test_intra_package_one_hop(self):
        topo = machine_b()
        for base in range(0, 8, 2):
            assert topo.hops(base, base + 1) == 1


class TestLookup:
    @pytest.mark.parametrize("name", ["A", "machine-A"])
    def test_machine_a_names(self, name):
        assert machine_by_name(name).n_nodes == 4

    @pytest.mark.parametrize("name", ["B", "machine-B"])
    def test_machine_b_names(self, name):
        assert machine_by_name(name).n_nodes == 8

    def test_unknown_machine(self):
        with pytest.raises(ConfigurationError):
            machine_by_name("C")

    def test_fresh_instances(self):
        assert machine_a() is not machine_a()
