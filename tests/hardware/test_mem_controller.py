"""Tests for the memory-controller queueing model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hardware.mem_controller import MemoryControllerModel


class TestValidation:
    def test_defaults_ok(self):
        MemoryControllerModel()

    def test_bad_base_latency(self):
        with pytest.raises(ConfigurationError):
            MemoryControllerModel(base_latency_cycles=0)

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryControllerModel(capacity_requests_per_sec=0)

    def test_cap_below_base(self):
        with pytest.raises(ConfigurationError):
            MemoryControllerModel(base_latency_cycles=500, max_latency_cycles=400)

    def test_negative_rates_rejected(self):
        model = MemoryControllerModel()
        with pytest.raises(ConfigurationError):
            model.latency_cycles(np.array([-1.0]))


class TestLatencyShape:
    def test_idle_latency_is_base(self):
        model = MemoryControllerModel(base_latency_cycles=200)
        lat = model.latency_cycles(np.zeros(4))
        assert np.allclose(lat, 200.0)

    def test_overload_hits_cap(self):
        model = MemoryControllerModel(
            base_latency_cycles=200,
            capacity_requests_per_sec=1e8,
            max_latency_cycles=1100,
        )
        lat = model.latency_cycles(np.array([1e10]))
        assert lat[0] == pytest.approx(1100.0)

    def test_paper_contention_range(self):
        # The paper cites ~200 cycles uncontended vs ~1000 overloaded.
        model = MemoryControllerModel()
        idle = model.latency_cycles(np.array([0.0]))[0]
        loaded = model.latency_cycles(
            np.array([model.capacity_requests_per_sec * 0.99])
        )[0]
        assert idle == pytest.approx(200.0)
        assert loaded >= 1000.0

    def test_monotone_in_load(self):
        model = MemoryControllerModel()
        rates = np.linspace(0, model.capacity_requests_per_sec, 20)
        lat = model.latency_cycles(rates)
        assert np.all(np.diff(lat) >= -1e-9)

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_latency_bounded_property(self, rate):
        model = MemoryControllerModel()
        lat = model.latency_cycles(np.array([rate]))[0]
        assert model.base_latency_cycles <= lat <= model.max_latency_cycles

    def test_utilisation_clipped(self):
        model = MemoryControllerModel(capacity_requests_per_sec=100.0)
        rho = model.utilisation(np.array([1e9]))
        assert rho[0] < 1.0
