"""Tests for the multi-size TLB model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.caches import CacheModel
from repro.hardware.tlb import TlbModel, TlbSpec, split_counts_by_size
from repro.vm.layout import PageSize


@pytest.fixture
def model():
    return TlbModel(TlbSpec(), CacheModel())


class TestTlbSpec:
    def test_defaults(self):
        spec = TlbSpec()
        assert spec.entries_for(PageSize.SIZE_4K) == 1024
        assert spec.entries_for(PageSize.SIZE_2M) == 128
        assert spec.entries_for(PageSize.SIZE_1G) == 16

    def test_invalid_entries(self):
        with pytest.raises(ConfigurationError):
            TlbSpec(entries_4k=0)

    def test_negative_walk_cost(self):
        with pytest.raises(ConfigurationError):
            TlbSpec(walk_base_cycles=-1)


class TestEpochResult:
    def test_no_accesses(self, model):
        res = model.epoch_result({}, 0.0)
        assert res.misses == 0.0
        assert res.walk_cycles == 0.0

    def test_fitting_working_set_no_misses(self, model):
        counts = {PageSize.SIZE_4K: np.ones(100)}
        res = model.epoch_result(counts, 1e6)
        assert res.misses == pytest.approx(0.0)

    def test_large_working_set_misses(self, model):
        counts = {PageSize.SIZE_4K: np.ones(100_000)}
        res = model.epoch_result(counts, 1e6)
        assert res.misses > 0.9e6
        assert res.miss_rate > 0.9
        assert res.walk_cycles > 0

    def test_2m_coverage_beats_4k(self, model):
        # Same working set expressed as 512x fewer 2MB translations.
        res_4k = model.epoch_result({PageSize.SIZE_4K: np.ones(50_000)}, 1e6)
        res_2m = model.epoch_result(
            {PageSize.SIZE_2M: np.ones(50_000 // 512)}, 1e6
        )
        assert res_2m.misses < res_4k.misses * 0.05

    def test_negative_accesses_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.epoch_result({}, -1.0)

    def test_coverage_bytes(self, model):
        assert model.coverage_bytes(PageSize.SIZE_4K) == 1024 * 4096
        assert model.coverage_bytes(PageSize.SIZE_2M) == 128 * 2 * 1024 * 1024


class TestEpochResultGrouped:
    def test_run_length_divides_misses(self, model):
        base = model.epoch_result_grouped(
            {PageSize.SIZE_4K: (np.array([50_000.0]), np.array([1.0]), np.array([1.0]))},
            1e6,
        )
        long_runs = model.epoch_result_grouped(
            {PageSize.SIZE_4K: (np.array([50_000.0]), np.array([1.0]), np.array([100.0]))},
            1e6,
        )
        assert long_runs.misses < base.misses / 50

    def test_empty_groups(self, model):
        res = model.epoch_result_grouped({}, 1e6)
        assert res.misses == 0.0

    def test_mixed_sizes_share_weighting(self, model):
        groups = {
            PageSize.SIZE_4K: (
                np.array([100_000.0]),
                np.array([0.5]),
                np.array([1.0]),
            ),
            PageSize.SIZE_2M: (
                np.array([10.0]),
                np.array([0.5]),
                np.array([1.0]),
            ),
        }
        res = model.epoch_result_grouped(groups, 1e6)
        # Only the 4K half should miss; 10 huge pages fit their array.
        assert 0.3e6 < res.misses < 0.55e6

    def test_miss_rate_bounded(self, model):
        groups = {
            PageSize.SIZE_4K: (
                np.array([1e7]),
                np.array([1.0]),
                np.array([1.0]),
            )
        }
        res = model.epoch_result_grouped(groups, 1e6)
        assert res.miss_rate <= 1.0


class TestSplitCountsBySize:
    def test_grouping(self):
        ids = np.array([1, 1, 2, 3, 3, 3])
        sizes = np.array(
            [
                int(PageSize.SIZE_4K),
                int(PageSize.SIZE_4K),
                int(PageSize.SIZE_4K),
                int(PageSize.SIZE_2M),
                int(PageSize.SIZE_2M),
                int(PageSize.SIZE_2M),
            ]
        )
        out = split_counts_by_size(ids, sizes)
        assert sorted(out[PageSize.SIZE_4K]) == [1.0, 2.0]
        assert list(out[PageSize.SIZE_2M]) == [3.0]

    def test_empty(self):
        out = split_counts_by_size(np.empty(0, dtype=int), np.empty(0, dtype=int))
        assert out == {}
