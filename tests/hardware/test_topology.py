"""Unit tests for the NUMA topology model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.topology import NumaNode, NumaTopology

GIB = 1024**3


def make_topo(n_nodes=2, cores=2):
    nodes = [NumaNode(i, cores, GIB) for i in range(n_nodes)]
    hops = np.ones((n_nodes, n_nodes), dtype=int) - np.eye(n_nodes, dtype=int)
    return NumaTopology("t", nodes, hops, 2e9)


class TestNumaNode:
    def test_valid_node(self):
        node = NumaNode(0, 4, GIB)
        assert node.n_cores == 4

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaNode(-1, 4, GIB)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaNode(0, 0, GIB)

    def test_zero_dram_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaNode(0, 1, 0)


class TestNumaTopology:
    def test_core_counts(self):
        topo = make_topo(n_nodes=3, cores=4)
        assert topo.n_nodes == 3
        assert topo.n_cores == 12

    def test_core_to_node_is_node_major(self):
        topo = make_topo(n_nodes=2, cores=2)
        assert list(topo.core_to_node) == [0, 0, 1, 1]

    def test_node_of_core(self):
        topo = make_topo(n_nodes=2, cores=3)
        assert topo.node_of_core(0) == 0
        assert topo.node_of_core(5) == 1

    def test_node_of_core_out_of_range(self):
        topo = make_topo()
        with pytest.raises(ConfigurationError):
            topo.node_of_core(99)

    def test_cores_of_node(self):
        topo = make_topo(n_nodes=2, cores=2)
        assert topo.cores_of_node(1) == [2, 3]

    def test_cores_of_node_out_of_range(self):
        topo = make_topo()
        with pytest.raises(ConfigurationError):
            topo.cores_of_node(7)

    def test_hops_diagonal_zero(self):
        topo = make_topo(n_nodes=3)
        for i in range(3):
            assert topo.hops(i, i) == 0

    def test_total_dram(self):
        topo = make_topo(n_nodes=4)
        assert topo.total_dram_bytes == 4 * GIB

    def test_unordered_nodes_rejected(self):
        nodes = [NumaNode(1, 2, GIB), NumaNode(0, 2, GIB)]
        with pytest.raises(ConfigurationError):
            NumaTopology("t", nodes, np.zeros((2, 2), dtype=int), 2e9)

    def test_asymmetric_hops_rejected(self):
        nodes = [NumaNode(i, 2, GIB) for i in range(2)]
        hops = np.array([[0, 1], [2, 0]])
        with pytest.raises(ConfigurationError):
            NumaTopology("t", nodes, hops, 2e9)

    def test_nonzero_diagonal_rejected(self):
        nodes = [NumaNode(i, 2, GIB) for i in range(2)]
        hops = np.array([[1, 1], [1, 0]])
        with pytest.raises(ConfigurationError):
            NumaTopology("t", nodes, hops, 2e9)

    def test_nonpositive_offdiagonal_rejected(self):
        nodes = [NumaNode(i, 2, GIB) for i in range(2)]
        hops = np.array([[0, 0], [0, 0]])
        with pytest.raises(ConfigurationError):
            NumaTopology("t", nodes, hops, 2e9)

    def test_bad_frequency_rejected(self):
        nodes = [NumaNode(i, 2, GIB) for i in range(2)]
        hops = np.array([[0, 1], [1, 0]])
        with pytest.raises(ConfigurationError):
            NumaTopology("t", nodes, hops, 0.0)

    def test_wrong_hop_shape_rejected(self):
        nodes = [NumaNode(i, 2, GIB) for i in range(3)]
        with pytest.raises(ConfigurationError):
            NumaTopology("t", nodes, np.zeros((2, 2), dtype=int), 2e9)

    def test_describe_mentions_shape(self):
        topo = make_topo(n_nodes=2, cores=2)
        text = topo.describe()
        assert "2 NUMA nodes" in text
        assert "4 cores total" in text
