"""End-to-end checks of the paper's qualitative claims.

Each test asserts a *shape* from the paper — who wins, which metric
moves in which direction — at reduced (quick) scale.  Runs are
memoised process-wide, so the marginal cost of each assertion is low.
"""

import pytest


class TestFigure1Table1:
    """THP vs Linux: benefits and harms (paper Sections 1-2)."""

    def test_thp_hurts_cg_on_machine_b(self, run):
        base = run("CG.D", "B", "linux-4k")
        thp = run("CG.D", "B", "thp")
        assert thp.improvement_over(base) < -20.0

    def test_cg_imbalance_explodes_under_thp(self, run):
        base = run("CG.D", "B", "linux-4k").metrics()
        thp = run("CG.D", "B", "thp").metrics()
        assert base.imbalance_pct < 10.0
        assert thp.imbalance_pct > 40.0

    def test_thp_hurts_ua_locality(self, run):
        base = run("UA.B", "A", "linux-4k").metrics()
        thp = run("UA.B", "A", "thp").metrics()
        assert base.lar_pct > 85.0
        assert thp.lar_pct < base.lar_pct - 15.0

    def test_thp_hurts_ua_performance(self, run):
        base = run("UA.B", "A", "linux-4k")
        thp = run("UA.B", "A", "thp")
        assert thp.improvement_over(base) < -3.0

    def test_thp_doubles_wc_on_machine_b(self, run):
        base = run("WC", "B", "linux-4k")
        thp = run("WC", "B", "thp")
        assert thp.improvement_over(base) > 40.0

    def test_wc_fault_bound_at_4k(self, run):
        base = run("WC", "B", "linux-4k").metrics()
        thp = run("WC", "B", "thp").metrics()
        assert base.max_fault_pct > 20.0
        assert thp.fault_time_total_s < base.fault_time_total_s

    def test_ssca_is_tlb_bound_at_4k(self, run):
        base = run("SSCA.20", "A", "linux-4k").metrics()
        thp = run("SSCA.20", "A", "thp").metrics()
        assert base.pct_l2_walk > 8.0
        assert thp.pct_l2_walk < 2.0

    def test_thp_helps_ssca_despite_imbalance(self, run):
        base = run("SSCA.20", "A", "linux-4k")
        thp = run("SSCA.20", "A", "thp")
        assert thp.improvement_over(base) > 8.0
        assert thp.metrics().imbalance_pct > base.metrics().imbalance_pct + 5.0

    def test_no_one_size_fits_all(self, run):
        """Figure 1's headline: THP is sometimes better, sometimes worse."""
        wins = run("WC", "B", "thp").improvement_over(run("WC", "B", "linux-4k"))
        loses = run("CG.D", "B", "thp").improvement_over(run("CG.D", "B", "linux-4k"))
        assert wins > 0 > loses


class TestTable2HotPagesAndSharing:
    """Hot-page effect and page-level false sharing (Section 3.1)."""

    def test_cg_gains_hot_pages_under_thp(self, run):
        base = run("CG.D", "B", "linux-4k").metrics()
        thp = run("CG.D", "B", "thp").metrics()
        assert base.n_hot_pages == 0
        assert 2 <= thp.n_hot_pages <= 4  # paper: 3

    def test_cg_pamup_rises_under_thp(self, run):
        base = run("CG.D", "B", "linux-4k").metrics()
        thp = run("CG.D", "B", "thp").metrics()
        assert base.pamup_pct < 1.0
        assert thp.pamup_pct > 5.0

    def test_hot_pages_fewer_than_nodes(self, run, machine_b_topo):
        thp = run("CG.D", "B", "thp").metrics()
        assert thp.n_hot_pages < machine_b_topo.n_nodes

    def test_ua_psp_explodes_under_thp(self, run):
        base = run("UA.B", "A", "linux-4k").metrics()
        thp = run("UA.B", "A", "thp").metrics()
        assert base.psp_pct < 40.0
        assert thp.psp_pct > base.psp_pct + 30.0

    def test_carrefour2m_cannot_remove_hot_pages(self, run):
        carr = run("CG.D", "B", "carrefour-2m").metrics()
        assert carr.n_hot_pages >= 2
        assert carr.imbalance_pct > 15.0


class TestFigure2CarrefourLimits:
    """Carrefour-2M helps some apps but not hot pages / false sharing."""

    def test_carrefour2m_fails_on_cg(self, run):
        base = run("CG.D", "B", "linux-4k")
        carr = run("CG.D", "B", "carrefour-2m")
        assert carr.improvement_over(base) < -20.0

    def test_carrefour2m_fails_on_ua(self, run):
        base = run("UA.B", "A", "linux-4k")
        carr = run("UA.B", "A", "carrefour-2m")
        assert carr.improvement_over(base) < -3.0
        # Interleaving shared pages leaves LAR at or below THP's level.
        assert carr.metrics().lar_pct <= run("UA.B", "A", "thp").metrics().lar_pct + 3

    def test_carrefour2m_restores_specjbb_balance(self, run):
        thp = run("SPECjbb", "A", "thp").metrics()
        carr = run("SPECjbb", "A", "carrefour-2m").metrics()
        assert carr.imbalance_pct < thp.imbalance_pct - 8.0

    def test_carrefour2m_beats_thp_on_specjbb(self, run):
        base = run("SPECjbb", "A", "linux-4k")
        assert run("SPECjbb", "A", "carrefour-2m").improvement_over(base) > run(
            "SPECjbb", "A", "thp"
        ).improvement_over(base)


class TestFigure3CarrefourLp:
    """Carrefour-LP restores what THP lost (Section 4.1)."""

    def test_lp_restores_cg(self, run):
        base = run("CG.D", "B", "linux-4k")
        thp = run("CG.D", "B", "thp")
        lp = run("CG.D", "B", "carrefour-lp")
        assert lp.improvement_over(base) > thp.improvement_over(base) + 15.0
        assert lp.improvement_over(base) > -16.0

    def test_lp_rebalances_cg(self, run):
        lp = run("CG.D", "B", "carrefour-lp").metrics()
        thp = run("CG.D", "B", "thp").metrics()
        assert lp.imbalance_pct < thp.imbalance_pct / 2

    def test_lp_splits_cg_pages(self, run):
        lp = run("CG.D", "B", "carrefour-lp").metrics()
        assert lp.pages_split_2m > 0

    def test_lp_restores_ua_locality(self, run):
        thp = run("UA.B", "A", "thp").metrics()
        lp = run("UA.B", "A", "carrefour-lp").metrics()
        assert lp.lar_pct > thp.lar_pct + 5.0

    def test_lp_beats_thp_on_ua(self, run):
        base = run("UA.B", "A", "linux-4k")
        assert run("UA.B", "A", "carrefour-lp").improvement_over(base) > run(
            "UA.B", "A", "thp"
        ).improvement_over(base)

    def test_lp_beats_thp_on_specjbb_b(self, run):
        base = run("SPECjbb", "B", "linux-4k")
        assert run("SPECjbb", "B", "carrefour-lp").improvement_over(base) > run(
            "SPECjbb", "B", "thp"
        ).improvement_over(base)


class TestFigure4Components:
    """Component ablation (Section 4.1, Figure 4)."""

    def test_conservative_only_avoids_cg_damage(self, run):
        base = run("CG.D", "B", "linux-4k")
        cons = run("CG.D", "B", "conservative-only")
        # Starting at 4KB, CG never shows TLB pressure, so the
        # conservative config stays near Linux performance.
        assert abs(cons.improvement_over(base)) < 10.0

    def test_conservative_only_misses_wc_startup(self, run):
        base = run("WC", "B", "linux-4k")
        cons = run("WC", "B", "conservative-only")
        thp = run("WC", "B", "thp")
        # Large pages arrive too late for the allocation storm.
        assert cons.improvement_over(base) < thp.improvement_over(base) - 15.0

    def test_reactive_only_matches_lp_on_ua(self, run):
        base = run("UA.B", "A", "linux-4k")
        lp = run("UA.B", "A", "carrefour-lp").improvement_over(base)
        reactive = run("UA.B", "A", "reactive-only").improvement_over(base)
        assert abs(lp - reactive) < 6.0

    def test_reactive_only_missplits_ssca(self, run):
        base = run("SSCA.20", "A", "linux-4k")
        reactive = run("SSCA.20", "A", "reactive-only")
        carr = run("SSCA.20", "A", "carrefour-2m")
        # The misestimated split costs performance vs Carrefour-2M.
        assert reactive.improvement_over(base) < carr.improvement_over(base) - 5.0

    def test_lp_close_to_best_for_cg(self, run):
        base = run("CG.D", "B", "linux-4k")
        improvements = {
            policy: run("CG.D", "B", policy).improvement_over(base)
            for policy in ("carrefour-2m", "conservative-only", "reactive-only", "carrefour-lp")
        }
        best = max(improvements.values())
        assert improvements["carrefour-lp"] > best - 12.0


class TestFigure5Unaffected:
    """Carrefour-LP must not hurt the unaffected applications."""

    @pytest.mark.parametrize("bench", ["Kmeans", "BT.B", "MG.D"])
    def test_lp_harmless(self, run, bench):
        base = run(bench, "A", "linux-4k")
        lp = run(bench, "A", "carrefour-lp")
        assert lp.improvement_over(base) > -8.0

    def test_lp_fixes_preexisting_issues_pca(self, run):
        base = run("pca", "B", "linux-4k")
        lp = run("pca", "B", "carrefour-lp")
        thp = run("pca", "B", "thp")
        assert lp.improvement_over(base) > 40.0
        assert lp.improvement_over(base) > thp.improvement_over(base)

    def test_lp_fixes_preexisting_issues_ep(self, run):
        base = run("EP.C", "B", "linux-4k")
        lp = run("EP.C", "B", "carrefour-lp")
        assert lp.improvement_over(base) > 5.0


class TestOverhead:
    """Section 4.2: Carrefour-LP overhead is modest where it cannot help."""

    def test_lp_overhead_on_lu(self, run):
        carr = run("LU.B", "B", "carrefour-2m")
        lp = run("LU.B", "B", "carrefour-lp")
        overhead = (lp.runtime_s / carr.runtime_s - 1.0) * 100.0
        assert overhead < 8.0

    def test_lp_overhead_vs_linux_on_neutral_app(self, run):
        base = run("Kmeans", "A", "linux-4k")
        lp = run("Kmeans", "A", "carrefour-lp")
        assert (lp.runtime_s / base.runtime_s - 1.0) * 100.0 < 8.0
