"""Section 4.4: very large (1GB) pages make NUMA issues pervasive."""

import pytest

from repro.vm.layout import PageSize


class TestVeryLargePages:
    def test_streamcluster_collapses_under_1g(self, run):
        base = run("streamcluster", "B", "linux-4k")
        huge = run("streamcluster", "B", "linux-4k", backing_1g=True)
        # Paper: ~4x degradation; we require at least 1.5x.
        assert huge.runtime_s > 1.5 * base.runtime_s

    def test_streamcluster_fine_at_2m(self, run):
        base = run("streamcluster", "B", "linux-4k")
        thp = run("streamcluster", "B", "thp")
        assert abs(thp.improvement_over(base)) < 15.0

    def test_ssca_degrades_under_1g(self, run):
        base = run("SSCA.20", "B", "linux-4k")
        huge = run("SSCA.20", "B", "linux-4k", backing_1g=True)
        assert huge.improvement_over(base) < -15.0

    def test_1g_pages_actually_used(self, run):
        huge = run("streamcluster", "B", "linux-4k", backing_1g=True)
        assert huge.metrics().final_page_counts[PageSize.SIZE_1G] > 0

    def test_1g_concentrates_traffic(self, run):
        base = run("streamcluster", "B", "linux-4k").metrics()
        huge = run("streamcluster", "B", "linux-4k", backing_1g=True).metrics()
        assert huge.imbalance_pct > base.imbalance_pct + 30.0

    def test_1g_inflates_sharing(self, run):
        base = run("streamcluster", "B", "linux-4k").metrics()
        huge = run("streamcluster", "B", "linux-4k", backing_1g=True).metrics()
        assert huge.psp_pct > base.psp_pct + 30.0

    def test_lp_recovers_1g_streamcluster(self, run):
        base = run("streamcluster", "B", "linux-4k")
        huge = run("streamcluster", "B", "linux-4k", backing_1g=True)
        lp = run("streamcluster", "B", "carrefour-lp", backing_1g=True)
        assert lp.runtime_s < huge.runtime_s
        assert lp.metrics().pages_split_1g > 0
