"""Unit tests for the arrival-generator registry and builtins."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ARRIVALS,
    ArrivalGenerator,
    ScenarioConfig,
    available_arrivals,
    make_arrival_generator,
)


def _schedule(scenario, n_epochs=300):
    """Materialise a generator's full arrival schedule."""
    gen = make_arrival_generator(scenario)
    active = 0
    out = []
    for epoch in range(n_epochs):
        arrivals = gen.arrivals(epoch, active)
        active += len(arrivals)
        for pair in arrivals:
            out.append((epoch, *pair))
    return out


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_arrivals()) == {
            "poisson",
            "fixed-trace",
            "closed-loop",
        }

    def test_names_match_keys(self):
        for key, cls in ARRIVALS.items():
            assert cls.name == key
            assert issubclass(cls, ArrivalGenerator)

    def test_unknown_arrival_rejected_with_hint(self):
        scenario = ScenarioConfig(arrival="poison")
        with pytest.raises(ConfigurationError, match="poisson"):
            make_arrival_generator(scenario)


class TestScenarioConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workloads": ()},
            {"policies": ()},
            {"arrival_rate": -0.1},
            {"max_tenants": 0},
            {"target_active": 0},
            {"max_host_epochs": 0},
            {"tenant_epochs": 0},
            {"pressure": -0.1},
            {"pressure": 1.0},
            {"trace": ((-1, "SSCA.20", "thp"),)},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(**kwargs)

    def test_frozen(self):
        scenario = ScenarioConfig()
        with pytest.raises(Exception):
            scenario.seed = 1


class TestPoisson:
    def test_schedule_deterministic_per_seed(self):
        scenario = ScenarioConfig(
            arrival_rate=0.1, max_tenants=8, seed=3,
            workloads=("SSCA.20", "CG.D"), policies=("thp",),
        )
        assert _schedule(scenario) == _schedule(scenario)

    def test_different_seeds_differ(self):
        a = ScenarioConfig(arrival_rate=0.1, max_tenants=8, seed=0)
        b = ScenarioConfig(arrival_rate=0.1, max_tenants=8, seed=1)
        assert _schedule(a) != _schedule(b)

    def test_caps_at_max_tenants(self):
        scenario = ScenarioConfig(arrival_rate=5.0, max_tenants=3)
        schedule = _schedule(scenario, n_epochs=50)
        assert len(schedule) == 3
        gen = make_arrival_generator(scenario)
        for epoch in range(50):
            gen.arrivals(epoch, 0)
        assert gen.exhausted()

    def test_round_robin_assignment(self):
        scenario = ScenarioConfig(
            arrival_rate=5.0, max_tenants=4,
            workloads=("SSCA.20", "CG.D"), policies=("thp", "linux-4k"),
        )
        pairs = [(w, p) for _, w, p in _schedule(scenario, n_epochs=50)]
        assert pairs == [
            ("SSCA.20", "thp"),
            ("CG.D", "linux-4k"),
            ("SSCA.20", "thp"),
            ("CG.D", "linux-4k"),
        ]


class TestFixedTrace:
    def test_replays_exact_schedule(self):
        scenario = ScenarioConfig(
            arrival="fixed-trace",
            trace=((0, "SSCA.20", "thp"), (5, "CG.D", "carrefour-lp")),
            max_tenants=8,
        )
        assert _schedule(scenario, n_epochs=10) == [
            (0, "SSCA.20", "thp"),
            (5, "CG.D", "carrefour-lp"),
        ]

    def test_exhausts_after_last_entry(self):
        scenario = ScenarioConfig(
            arrival="fixed-trace",
            trace=((3, "SSCA.20", "thp"),),
            max_tenants=8,
        )
        gen = make_arrival_generator(scenario)
        assert not gen.exhausted()
        for epoch in range(4):
            gen.arrivals(epoch, 0)
        assert gen.exhausted()

    def test_caps_at_max_tenants(self):
        scenario = ScenarioConfig(
            arrival="fixed-trace",
            trace=tuple((0, "SSCA.20", "thp") for _ in range(5)),
            max_tenants=2,
        )
        assert len(_schedule(scenario, n_epochs=5)) == 2


class TestClosedLoop:
    def test_tops_up_to_target(self):
        scenario = ScenarioConfig(
            arrival="closed-loop", target_active=3, max_tenants=10
        )
        gen = make_arrival_generator(scenario)
        assert len(gen.arrivals(0, 0)) == 3
        assert len(gen.arrivals(1, 3)) == 0
        # One exit -> one replacement.
        assert len(gen.arrivals(2, 2)) == 1

    def test_budget_bounds_replacements(self):
        scenario = ScenarioConfig(
            arrival="closed-loop", target_active=2, max_tenants=3
        )
        gen = make_arrival_generator(scenario)
        assert len(gen.arrivals(0, 0)) == 2
        assert len(gen.arrivals(1, 0)) == 1
        assert gen.exhausted()
        assert gen.arrivals(2, 0) == []
