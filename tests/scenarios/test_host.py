"""Host multiplexing: shared allocator, lifecycles, OOM, pressure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.invariants import (
    InvariantViolation,
    check_host_conservation,
    check_tenant_released,
)
from repro.errors import SimulationError
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation, Tenant
from repro.sim.host import Host
from repro.sim.policy import LinuxPolicy
from repro.vm.frame_allocator import PhysicalMemory
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import PartitionedRegion, SharedRegion

MIB = 1 << 20


def make_instance(machine, name="toy", total_epochs=4, mib=6):
    regions = [
        PartitionedRegion("p", (mib * MIB) // 3, 0.6),
        SharedRegion("s", (2 * mib * MIB) // 3, 0.4),
    ]
    cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e7, dram_accesses=1e6)
    return WorkloadInstance(
        name, machine, regions, cost, total_epochs=total_epochs
    )


def quick_cfg(**kwargs):
    defaults = dict(stream_length=256, seed=0, check_invariants=True)
    defaults.update(kwargs)
    return SimConfig(**defaults)


def make_tenant(machine, host, tenant_id, cfg=None, **instance_kwargs):
    cfg = cfg or quick_cfg()
    return Tenant(
        machine,
        make_instance(machine, **instance_kwargs),
        LinuxPolicy(False),
        config=cfg,
        phys=host.phys,
        tenant_id=tenant_id,
    )


class TestColocation:
    def test_two_tenants_share_one_allocator(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        a = make_tenant(tiny_topo, host, 0, name="a")
        b = make_tenant(tiny_topo, host, 1, name="b")
        host.admit(a)
        host.admit(b)
        assert a.phys is b.phys is host.phys
        assert not a.owns_phys and not b.owns_phys
        host.run_to_completion()
        assert host.status == {0: "completed", 1: "completed"}
        assert a.result().runtime_s > 0
        assert b.result().runtime_s > 0
        # Both footprints still live on the shared allocator.
        assert host.phys.total_used_bytes > 0

    def test_invariant_checker_runs_with_shared_allocator(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        assert host.checker is not None
        host.admit(make_tenant(tiny_topo, host, 0))
        host.run_to_completion()
        assert host.checker._epochs_checked == host.epoch

    def test_release_returns_every_page(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenant = make_tenant(tiny_topo, host, 0)
        host.admit(tenant)
        host.run_to_completion()
        assert host.phys.total_used_bytes > 0
        freed = host.release(tenant)
        assert freed > 0
        assert host.phys.total_used_bytes == 0
        assert host.status[0] == "released"
        check_tenant_released(tenant.asp)

    def test_staggered_admission(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        first = make_tenant(tiny_topo, host, 0, total_epochs=6)
        host.admit(first)
        host.step_epoch()
        host.step_epoch()
        late = make_tenant(tiny_topo, host, 1, total_epochs=2)
        host.admit(late)
        host.run_to_completion()
        assert host.status == {0: "completed", 1: "completed"}
        # The late tenant ran its own local clock, not the host's.
        assert len(late.result().epoch_times_s) == 2
        assert len(first.result().epoch_times_s) == 6

    def test_colocated_run_no_slower_than_solo(self, tiny_topo):
        solo = Simulation(
            tiny_topo,
            make_instance(tiny_topo, name="solo"),
            LinuxPolicy(False),
            quick_cfg(),
        ).run()
        host = Host(tiny_topo, config=quick_cfg())
        a = make_tenant(tiny_topo, host, 0, name="solo")
        b = make_tenant(tiny_topo, host, 1, name="rival")
        host.admit(a)
        host.admit(b)
        host.run_to_completion()
        # Co-runner traffic can only add congestion, never remove it.
        assert a.result().runtime_s >= solo.runtime_s


class TestAdmission:
    def test_foreign_allocator_rejected(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        foreign = Tenant(
            tiny_topo,
            make_instance(tiny_topo),
            LinuxPolicy(False),
            config=quick_cfg(),
            phys=PhysicalMemory.for_topology(tiny_topo),
            tenant_id=0,
        )
        with pytest.raises(SimulationError, match="allocator"):
            host.admit(foreign)

    def test_wrong_machine_rejected(self, tiny_topo, quad_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenant = Tenant(
            quad_topo,
            make_instance(quad_topo),
            LinuxPolicy(False),
            config=quick_cfg(),
            phys=host.phys,
            tenant_id=0,
        )
        with pytest.raises(SimulationError, match="machine"):
            host.admit(tenant)

    def test_duplicate_id_rejected(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        host.admit(make_tenant(tiny_topo, host, 0))
        with pytest.raises(SimulationError, match="twice"):
            host.admit(make_tenant(tiny_topo, host, 0))

    def test_release_running_tenant_rejected(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenant = make_tenant(tiny_topo, host, 0)
        host.admit(tenant)
        with pytest.raises(SimulationError, match="running"):
            host.release(tenant)

    def test_evict_frees_a_running_tenant(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenant = make_tenant(tiny_topo, host, 0, total_epochs=10)
        host.admit(tenant)
        host.step_epoch()
        assert host.phys.total_used_bytes > 0
        host.evict(tenant)
        assert host.phys.total_used_bytes == 0
        assert host.status[0] == "released"
        assert not host.active
        with pytest.raises(SimulationError):
            host.evict(tenant)


class TestOom:
    def test_oom_kill_releases_pages(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        # Pin almost everything, then admit a tenant that needs more
        # than what's left.
        host.apply_pressure(0.97)
        used_before = host.phys.total_used_bytes
        victim = make_tenant(tiny_topo, host, 0, mib=512)
        host.admit(victim)
        host.run_to_completion()
        assert host.status[0] == "oom-killed"
        # Every frame the victim touched went back to the pool.
        assert host.phys.total_used_bytes == used_before
        check_tenant_released(victim.asp)

    def test_survivor_keeps_running_after_oom(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        host.apply_pressure(0.97)
        survivor = make_tenant(tiny_topo, host, 0, mib=2, total_epochs=4)
        victim = make_tenant(tiny_topo, host, 1, mib=512)
        host.admit(survivor)
        host.admit(victim)
        host.run_to_completion()
        assert host.status[1] == "oom-killed"
        assert host.status[0] == "completed"
        assert len(survivor.result().epoch_times_s) == 4


class TestBackgroundRates:
    def test_sums_other_active_tenants(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenants = [make_tenant(tiny_topo, host, i) for i in range(3)]
        for tenant in tenants:
            host.admit(tenant)
        tenants[0].last_rates = np.full((2, 2), 1.0)
        tenants[1].last_rates = np.full((2, 2), 2.0)
        tenants[2].last_rates = None
        bg = host.background_rates(tenants[2])
        assert np.array_equal(bg, np.full((2, 2), 3.0))
        # Self is excluded and peers without rates contribute nothing.
        assert np.array_equal(
            host.background_rates(tenants[0]), np.full((2, 2), 2.0)
        )

    def test_none_when_alone(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenant = make_tenant(tiny_topo, host, 0)
        host.admit(tenant)
        assert host.background_rates(tenant) is None

    def test_sum_does_not_alias_a_tenants_rates(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenants = [make_tenant(tiny_topo, host, i) for i in range(2)]
        for tenant in tenants:
            host.admit(tenant)
        tenants[0].last_rates = np.full((2, 2), 1.0)
        bg = host.background_rates(tenants[1])
        bg += 99.0
        assert np.array_equal(tenants[0].last_rates, np.full((2, 2), 1.0))


class TestPressure:
    def test_pins_requested_fraction(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        total = host.phys.total_free_bytes
        pinned = host.apply_pressure(0.7)
        assert pinned == sum(
            node.test_pinned_bytes for node in host.phys.nodes
        )
        assert pinned == pytest.approx(0.7 * total, rel=0.01)

    def test_conservation_holds_under_pressure(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        host.apply_pressure(0.5)
        tenant = make_tenant(tiny_topo, host, 0)
        host.admit(tenant)
        host.run_to_completion()
        check_host_conservation(host.phys, [tenant.asp])

    @pytest.mark.parametrize("fraction", [-0.1, 1.0, 1.5])
    def test_invalid_fraction_rejected(self, tiny_topo, fraction):
        host = Host(tiny_topo, config=quick_cfg())
        with pytest.raises(Exception):
            host.apply_pressure(fraction)


class TestHostConservationCheck:
    def test_foreign_address_space_rejected(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        other = Host(tiny_topo, config=quick_cfg())
        stranger = make_tenant(tiny_topo, other, 0)
        with pytest.raises(InvariantViolation, match="allocator"):
            check_host_conservation(host.phys, [stranger.asp])

    def test_leak_detected(self, tiny_topo):
        host = Host(tiny_topo, config=quick_cfg())
        tenant = make_tenant(tiny_topo, host, 0)
        host.admit(tenant)
        host.step_epoch()
        # Simulate a leak: allocate frames no tenant mapping explains.
        host.phys[0].alloc_small(4)
        with pytest.raises(InvariantViolation, match="conservation"):
            check_host_conservation(host.phys, [tenant.asp])
