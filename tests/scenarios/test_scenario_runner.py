"""Scenario runner: pinned colocation golden, determinism, caching.

The golden scenario here is the repo's multi-tenant counterpart of the
engine goldens in ``tests/sim/test_engine_golden.py``: a fixed-trace
colocation of ``SSCA.20`` under ``carrefour-lp`` with a late-arriving
``Kmeans`` under ``thp``, run twice — on a fresh-boot host and under
70% fragmenting memory pressure.  Runtimes are pinned as hex floats;
any drift in the host multiplexing, the shared allocator, the pressure
model, or THP's fragmentation fallback shows up as an exact mismatch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.cache import ResultCache, scenario_fingerprint
from repro.experiments.scenario_runner import (
    ScenarioResult,
    execute_scenario,
    run_scenario,
    tenant_seed,
)
from repro.scenarios import ScenarioConfig
from repro.sim.config import SimConfig
from repro.vm.layout import PageSize

#: The pinned colocation scenario (see module docstring).  Quick-scale
#: footprints on machine A; tenant 1 arrives at host epoch 4, both run
#: 10 local epochs.
PINNED = ScenarioConfig(
    arrival="fixed-trace",
    machine="A",
    trace=((0, "SSCA.20", "carrefour-lp"), (4, "Kmeans", "thp")),
    max_tenants=2,
    tenant_epochs=10,
    seed=0,
)

#: Golden observations by pressure fraction.  Under pressure the pins
#: fragment huge-page contiguity, so both tenants' THP allocation falls
#: back to base pages (zero 2MB pages mapped) and the congested
#: carrefour-lp tenant slows by ~19% — the paper's loaded-server regime
#: versus a fresh boot.  ``pressure_bytes`` is exact: the pressure model
#: is deterministic, so a single byte of drift means the allocator or
#: the pinning algorithm changed.
SCENARIO_GOLDENS = {
    0.0: {
        "host_epochs": 14,
        "pressure_bytes": 0,
        "events": [(0, "spawn", 0), (4, "spawn", 1), (10, "exit", 0), (14, "exit", 1)],
        "tenants": [
            {
                "status": "completed",
                "exit_epoch": 10,
                "runtime_s": "0x1.153d1e9de4935p+2",
                "pages_4k": 15872,
                "pages_2m": 425,
            },
            {
                "status": "completed",
                "exit_epoch": 14,
                "runtime_s": "0x1.8162ca6b780c3p+1",
                "pages_4k": 0,
                "pages_2m": 148,
            },
        ],
    },
    0.7: {
        "host_epochs": 14,
        "pressure_bytes": 36077715456,
        "events": [(0, "spawn", 0), (4, "spawn", 1), (10, "exit", 0), (14, "exit", 1)],
        "tenants": [
            {
                "status": "completed",
                "exit_epoch": 10,
                "runtime_s": "0x1.4b6402ac24d7cp+2",
                "pages_4k": 233472,
                "pages_2m": 0,
            },
            {
                "status": "completed",
                "exit_epoch": 14,
                "runtime_s": "0x1.8e88d50b21e9fp+1",
                "pages_4k": 75776,
                "pages_2m": 0,
            },
        ],
    },
}


def _observe_scenario(result: ScenarioResult) -> dict:
    return {
        "host_epochs": result.host_epochs,
        "pressure_bytes": result.pressure_bytes,
        "events": result.events,
        "tenants": [
            {
                "status": t.status,
                "exit_epoch": t.exit_epoch,
                "runtime_s": t.result.runtime_s.hex(),
                "pages_4k": t.result.final_page_counts[PageSize.SIZE_4K],
                "pages_2m": t.result.final_page_counts[PageSize.SIZE_2M],
            }
            for t in result.tenants
        ],
    }


def _signature(result: ScenarioResult) -> tuple:
    """Bit-exact identity of a scenario run (for determinism tests)."""
    return (
        result.host_epochs,
        result.pressure_bytes,
        tuple(result.events),
        tuple(
            (
                t.tenant_id,
                t.workload,
                t.policy,
                t.status,
                t.exit_epoch,
                t.result.runtime_s.hex(),
                tuple(e.hex() for e in t.result.epoch_times_s),
                tuple(sorted(t.result.final_page_counts.items())),
            )
            for t in result.tenants
        ),
    )


class TestPinnedColocationGolden:
    @pytest.mark.parametrize("pressure", sorted(SCENARIO_GOLDENS))
    def test_matches_golden(self, pressure, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        scenario = dataclasses.replace(PINNED, pressure=pressure)
        result = execute_scenario(scenario, SimConfig.quick(seed=0))
        assert _observe_scenario(result) == SCENARIO_GOLDENS[pressure]

    def test_pressure_slows_the_colocation(self):
        fresh = SCENARIO_GOLDENS[0.0]["tenants"]
        loaded = SCENARIO_GOLDENS[0.7]["tenants"]
        for before, after in zip(fresh, loaded):
            assert float.fromhex(after["runtime_s"]) > float.fromhex(
                before["runtime_s"]
            )
            # The slowdown's mechanism: THP lost every huge page.
            assert after["pages_2m"] == 0 and before["pages_2m"] > 0


class TestDeterminism:
    SCENARIO = ScenarioConfig(
        arrival="poisson",
        machine="A",
        workloads=("SSCA.20", "Kmeans"),
        policies=("thp", "carrefour-lp"),
        arrival_rate=0.5,
        max_tenants=3,
        tenant_epochs=4,
        pressure=0.3,
        seed=7,
    )

    def test_same_seed_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        cfg = SimConfig.quick(seed=0)
        first = execute_scenario(self.SCENARIO, cfg)
        second = execute_scenario(self.SCENARIO, cfg)
        assert _signature(first) == _signature(second)

    def test_identical_across_stream_bank_backends(self, monkeypatch):
        cfg = SimConfig.quick(seed=0)
        monkeypatch.setenv("REPRO_STREAM_BANK", "0")
        scalar = execute_scenario(self.SCENARIO, cfg)
        monkeypatch.setenv("REPRO_STREAM_BANK", "1")
        banked = execute_scenario(self.SCENARIO, cfg)
        assert _signature(scalar) == _signature(banked)

    def test_different_scenario_seeds_differ(self):
        cfg = SimConfig.quick(seed=0)
        a = execute_scenario(self.SCENARIO, cfg)
        b = execute_scenario(
            dataclasses.replace(self.SCENARIO, seed=8), cfg
        )
        assert _signature(a) != _signature(b)


class TestTenantSeeds:
    def test_distinct_per_tenant(self):
        scenario = ScenarioConfig(seed=0)
        seeds = [tenant_seed(scenario, i) for i in range(32)]
        assert len(set(seeds)) == len(seeds)
        assert all(0 <= s < 2**31 for s in seeds)

    def test_stable_across_calls(self):
        scenario = ScenarioConfig(seed=5)
        assert tenant_seed(scenario, 3) == tenant_seed(scenario, 3)


class TestCaching:
    SCENARIO = dataclasses.replace(PINNED, pressure=0.7)

    def test_run_scenario_roundtrips_through_cache(self):
        cfg = SimConfig.quick(seed=0)
        first = run_scenario(self.SCENARIO, cfg)
        key = scenario_fingerprint(self.SCENARIO, cfg)
        cached = ResultCache.default().get(key, expect=ScenarioResult)
        assert cached is not None
        second = run_scenario(self.SCENARIO, cfg)
        assert _signature(first) == _signature(second) == _signature(cached)

    def test_scenario_keys_disjoint_by_pressure(self):
        cfg = SimConfig.quick(seed=0)
        a = scenario_fingerprint(self.SCENARIO, cfg)
        b = scenario_fingerprint(
            dataclasses.replace(self.SCENARIO, pressure=0.0), cfg
        )
        assert a != b

    def test_use_cache_false_bypasses(self):
        cfg = SimConfig.quick(seed=0)
        scenario = dataclasses.replace(PINNED, seed=99)
        run_scenario(scenario, cfg, use_cache=False)
        key = scenario_fingerprint(scenario, cfg)
        assert ResultCache.default().get(key, expect=ScenarioResult) is None


class TestTruncation:
    def test_clock_runout_marks_tenants_truncated(self):
        scenario = ScenarioConfig(
            arrival="fixed-trace",
            machine="A",
            trace=((0, "SSCA.20", "thp"),),
            max_tenants=1,
            tenant_epochs=50,
            max_host_epochs=3,
            seed=0,
        )
        result = execute_scenario(scenario, SimConfig.quick(seed=0))
        assert result.host_epochs == 3
        (record,) = result.tenants
        assert record.status == "truncated"
        assert record.exit_epoch is None
        # The partial result covers exactly the epochs that ran.
        assert len(record.result.epoch_times_s) == 3
        with pytest.raises(ValueError):
            result.mean_runtime_s()
