"""Tests for simulation configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import MachineModels, SimConfig


class TestSimConfig:
    def test_defaults_valid(self):
        cfg = SimConfig()
        assert cfg.epoch_s > 0
        assert isinstance(cfg.models, MachineModels)

    def test_quick_preset(self):
        cfg = SimConfig.quick(seed=7)
        assert cfg.seed == 7
        assert cfg.scale < 1.0
        assert cfg.stream_length < SimConfig().stream_length

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epoch_s": 0},
            {"stream_length": 0},
            {"scale": 0},
            {"scale": 1.5},
            {"ibs_rate": -0.1},
            {"ibs_rate": 1.5},
            {"ibs_cost_cycles": 0},
            {"ibs_cost_cycles": -2500.0},
            {"max_epochs": 0},
            {"khugepaged_batch": 0},
            {"khugepaged_batch": -512},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimConfig(**kwargs)

    def test_frozen(self):
        cfg = SimConfig()
        with pytest.raises(Exception):
            cfg.scale = 0.5
