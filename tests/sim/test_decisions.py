"""Unit tests for the decision kernel: executor, conflicts, composition."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.counters import CounterBank
from repro.hardware.ibs import IbsSamples
from repro.sim.decisions import (
    ChargeCompute,
    MergeSummary,
    MigratePage,
    Note,
    Outcome,
    ReclaimPages,
    ReplicatePageTables,
    Split2M,
    ToggleThpAlloc,
)
from repro.sim.engine import ActionExecutor, PageTableState, apply_decisions
from repro.sim.policy import PlacementPolicy, PolicyActionSummary, PolicyStack
from repro.vm.address_space import AddressSpace, BACKING_ID_2M_OFFSET
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, PAGE_2M, PAGE_4K
from repro.vm.thp import ThpState

GIB = 1 << 30


def make_host(n_chunks=4, n_nodes=2, huge=True):
    """A minimal simulation stand-in the executor can mutate."""
    phys = PhysicalMemory([GIB] * n_nodes)
    asp = AddressSpace(n_chunks * GRANULES_PER_2M, phys)
    if huge:
        asp.premap_pattern_2m(0, np.zeros(n_chunks, dtype=np.int8))
    return SimpleNamespace(
        asp=asp,
        thp=ThpState(),
        page_tables=PageTableState(),
        machine=SimpleNamespace(n_nodes=n_nodes),
    )


def gen_of(*decisions):
    """A decider generator yielding a fixed decision sequence."""

    def _gen():
        for decision in decisions:
            yield decision

    return _gen()


class FakeDecider(PlacementPolicy):
    """Scripted decider: yields its decisions, records the outcomes."""

    def __init__(self, name, decisions):
        self.name = name
        self.decisions = decisions
        self.outcomes = []

    def decide(self, sim, samples, window):
        for decision in self.decisions:
            outcome = yield decision
            self.outcomes.append(outcome)


def run_stack(host, *deciders):
    stack = PolicyStack(deciders)
    executor = ActionExecutor(host)
    summary = executor.run_interval(
        stack, IbsSamples.empty(), CounterBank(host.machine.n_nodes, 4)
    )
    return executor, summary


class TestExecutorApply:
    def test_charge_compute_accumulates(self):
        host = make_host()
        summary, _ = apply_decisions(
            host, gen_of(ChargeCompute(0.25), ChargeCompute(0.5))
        )
        assert summary.compute_s == pytest.approx(0.75)

    def test_migrate_page_applied(self):
        host = make_host()
        summary, _ = apply_decisions(
            host, gen_of(MigratePage(BACKING_ID_2M_OFFSET, 1))
        )
        assert summary.migrated_2m == 1
        assert summary.bytes_migrated == PAGE_2M
        assert host.asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1

    def test_migrate_noop_not_applied(self):
        host = make_host()
        executor = ActionExecutor(host)
        summary = PolicyActionSummary()
        # Already on node 0: nothing moves, decision is a skip.
        executor.drive(
            gen_of(MigratePage(BACKING_ID_2M_OFFSET, 0)), summary
        )
        assert executor.decisions_skipped == 1
        assert summary.bytes_migrated == 0

    def test_split_counts(self):
        host = make_host()
        summary, _ = apply_decisions(
            host, gen_of(Split2M(BACKING_ID_2M_OFFSET))
        )
        assert summary.splits_2m == 1
        assert not host.asp.huge[0]

    def test_thp_toggle(self):
        host = make_host()
        host.thp.enable_alloc()
        apply_decisions(host, gen_of(ToggleThpAlloc(False)))
        assert not host.thp.alloc_enabled

    def test_replicate_page_tables_once(self):
        host = make_host()
        host.page_tables.numa_enabled = True
        executor = ActionExecutor(host)
        summary = PolicyActionSummary()
        executor.drive(
            gen_of(ReplicatePageTables(), ReplicatePageTables()), summary
        )
        assert host.page_tables.replicated
        # n_nodes - 1 = 1 replica of the live page-table bytes.
        assert summary.bytes_replicated == host.asp.page_table_bytes()
        assert summary.replicated_pages == summary.bytes_replicated // PAGE_4K
        assert executor.decisions_applied == 1
        assert executor.decisions_skipped == 1

    def test_outcome_feedback_reaches_decider(self):
        host = make_host()
        decider = FakeDecider(
            "fb",
            [
                MigratePage(BACKING_ID_2M_OFFSET, 1),  # moves
                MigratePage(BACKING_ID_2M_OFFSET, 1),  # already there
            ],
        )
        executor = ActionExecutor(host)
        executor.drive(
            decider.decide(host, IbsSamples.empty(), None),
            PolicyActionSummary(),
        )
        first, second = decider.outcomes
        assert first.applied and first.bytes_moved == PAGE_2M
        assert not second.applied

    def test_conservation_counters(self):
        host = make_host()
        executor = ActionExecutor(host)
        summary = PolicyActionSummary()
        executor.drive(
            gen_of(
                ChargeCompute(0.1),
                MigratePage(BACKING_ID_2M_OFFSET, 1),
                MigratePage(BACKING_ID_2M_OFFSET, 1),  # no-op: skip
            ),
            summary,
        )
        assert executor.decisions_seen == 3
        assert (
            executor.decisions_seen
            == executor.decisions_applied + executor.decisions_skipped
        )


class TestReclaimPages:
    def make_4k_host(self, n_granules=64):
        """A host whose first granules are plain 4KB mappings."""
        host = make_host(huge=False)
        host.asp.fault_in(
            np.arange(n_granules), node=0, thp_alloc=False
        )
        return host

    def test_reclaim_applied_with_exact_counters(self):
        host = self.make_4k_host()
        summary, _ = apply_decisions(
            host, gen_of(ReclaimPages(np.arange(16)))
        )
        assert summary.pages_reclaimed == 16
        assert summary.bytes_reclaimed == 16 * PAGE_4K
        assert np.all(host.asp.home_nodes(np.arange(16)) == -1)
        host.asp.check_invariants()

    def test_outcome_reports_bytes_and_count(self):
        host = self.make_4k_host()
        decider = FakeDecider("r", [ReclaimPages(np.arange(8))])
        ActionExecutor(host).drive(
            decider.decide(host, IbsSamples.empty(), None),
            PolicyActionSummary(),
        )
        (outcome,) = decider.outcomes
        assert outcome.applied
        assert outcome.bytes_moved == 8 * PAGE_4K
        assert outcome.count == 8

    def test_nothing_eligible_is_a_skip(self):
        host = make_host(huge=True)  # everything huge-backed
        executor = ActionExecutor(host)
        summary = PolicyActionSummary()
        executor.drive(gen_of(ReclaimPages(np.arange(4))), summary)
        assert executor.decisions_skipped == 1
        assert summary.pages_reclaimed == 0

    def test_page_id_claims_conflict_domain(self):
        host = self.make_4k_host()
        a = FakeDecider("a", [ReclaimPages(np.arange(4), page_id=0)])
        b = FakeDecider("b", [MigratePage(0, 1)])
        run_stack(host, a, b)
        assert a.outcomes[0].applied
        assert b.outcomes[0].reason == "conflict"

    def test_without_page_id_no_claim(self):
        host = self.make_4k_host()
        a = FakeDecider("a", [ReclaimPages(np.arange(4))])
        b = FakeDecider(
            "b", [ReclaimPages(np.arange(8, 12))]
        )
        run_stack(host, a, b)
        assert a.outcomes[0].applied and b.outcomes[0].applied


class TestConflictResolution:
    def test_first_decider_wins_page(self):
        host = make_host()
        a = FakeDecider("a", [MigratePage(BACKING_ID_2M_OFFSET, 1)])
        b = FakeDecider("b", [MigratePage(BACKING_ID_2M_OFFSET, 0)])
        run_stack(host, a, b)
        # b's migration back to node 0 was skipped as a conflict.
        assert host.asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1
        assert b.outcomes[0].reason == "conflict"

    def test_same_decider_may_touch_target_twice(self):
        host = make_host()
        a = FakeDecider(
            "a",
            [
                MigratePage(BACKING_ID_2M_OFFSET, 1),
                MigratePage(BACKING_ID_2M_OFFSET, 0),
            ],
        )
        b = FakeDecider("b", [ChargeCompute(0.0)])
        run_stack(host, a, b)
        assert a.outcomes[0].applied and a.outcomes[1].applied
        assert host.asp.node_of_backing(BACKING_ID_2M_OFFSET) == 0

    def test_unapplied_decision_does_not_claim(self):
        host = make_host()
        # a's migrate is a no-op (page already local) so it must not
        # claim the page against b.
        a = FakeDecider("a", [MigratePage(BACKING_ID_2M_OFFSET, 0)])
        b = FakeDecider("b", [MigratePage(BACKING_ID_2M_OFFSET, 1)])
        run_stack(host, a, b)
        assert not a.outcomes[0].applied
        assert b.outcomes[0].applied
        assert host.asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1

    def test_thp_toggle_is_a_shared_target(self):
        host = make_host()
        a = FakeDecider("a", [ToggleThpAlloc(False)])
        b = FakeDecider("b", [ToggleThpAlloc(True)])
        run_stack(host, a, b)
        assert not host.thp.alloc_enabled
        assert b.outcomes[0].reason == "conflict"

    def test_distinct_pages_no_conflict(self):
        host = make_host()
        a = FakeDecider("a", [MigratePage(BACKING_ID_2M_OFFSET, 1)])
        b = FakeDecider("b", [MigratePage(BACKING_ID_2M_OFFSET + 1, 1)])
        run_stack(host, a, b)
        assert a.outcomes[0].applied and b.outcomes[0].applied

    def test_single_decider_never_conflicts_with_itself(self):
        host = make_host()
        a = FakeDecider(
            "a",
            [
                MigratePage(BACKING_ID_2M_OFFSET, 1),
                MigratePage(BACKING_ID_2M_OFFSET, 0),
            ],
        )
        executor = ActionExecutor(host)
        executor.run_interval(
            a, IbsSamples.empty(), CounterBank(host.machine.n_nodes, 4)
        )
        assert executor.decisions_skipped == 0


class TestNotesCap:
    def test_add_note_caps_and_counts(self):
        summary = PolicyActionSummary()
        for i in range(PolicyActionSummary.MAX_NOTES + 5):
            summary.add_note(f"note {i}")
        assert len(summary.notes) == PolicyActionSummary.MAX_NOTES
        assert summary.notes_dropped == 5

    def test_merge_below_cap_keeps_all(self):
        a = PolicyActionSummary(notes=["x"])
        b = PolicyActionSummary(notes=["y", "z"])
        a.merge(b)
        assert a.notes == ["x", "y", "z"]
        assert a.notes_dropped == 0

    def test_merge_past_cap_counts_drops(self):
        a = PolicyActionSummary()
        a.notes = [f"a{i}" for i in range(PolicyActionSummary.MAX_NOTES - 1)]
        b = PolicyActionSummary(notes=["b0", "b1", "b2"])
        a.merge(b)
        assert len(a.notes) == PolicyActionSummary.MAX_NOTES
        assert a.notes[-1] == "b0"
        assert a.notes_dropped == 2

    def test_executor_note_cap(self):
        host = make_host()
        notes = [Note(f"n{i}") for i in range(PolicyActionSummary.MAX_NOTES + 3)]
        summary, _ = apply_decisions(host, gen_of(*notes))
        assert len(summary.notes) == PolicyActionSummary.MAX_NOTES
        assert summary.notes_dropped == 3


class TestLegacyBridge:
    def test_on_interval_subclass_still_works(self):
        class Legacy(PlacementPolicy):
            name = "legacy"

            def on_interval(self, sim, samples, window):
                summary = PolicyActionSummary()
                summary.compute_s = 0.125
                summary.add_note("legacy ran")
                return summary

        host = make_host()
        summary, _ = apply_decisions(
            host, Legacy().decide(host, IbsSamples.empty(), None)
        )
        assert summary.compute_s == 0.125
        assert summary.notes == ["legacy ran"]

    def test_merge_summary_decision(self):
        host = make_host()
        inner = PolicyActionSummary()
        inner.migrated_2m = 7
        summary, _ = apply_decisions(host, gen_of(MergeSummary(inner)))
        assert summary.migrated_2m == 7


class TestPolicyStack:
    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicyStack([])

    def test_name_joins_members(self):
        a = FakeDecider("a", [])
        b = FakeDecider("b", [])
        assert PolicyStack([a, b]).name == "a+b"
        assert PolicyStack([a, b], name="custom").name == "custom"

    def test_interval_is_min_of_members(self):
        a = FakeDecider("a", [])
        b = FakeDecider("b", [])
        a.interval_s = 2.0
        b.interval_s = 0.5
        assert PolicyStack([a, b]).interval_s == 0.5

    def test_daemonless_member_ignored_for_interval(self):
        a = FakeDecider("a", [])
        a.interval_s = None
        b = FakeDecider("b", [])
        b.interval_s = 3.0
        assert PolicyStack([a, b]).interval_s == 3.0
        assert PolicyStack([a], name="a").interval_s is None

    def test_deciders_flatten_nested_stacks(self):
        a = FakeDecider("a", [])
        b = FakeDecider("b", [])
        c = FakeDecider("c", [])
        outer = PolicyStack([PolicyStack([a, b]), c])
        assert outer.deciders() == (a, b, c)

    def test_outcome_none_fields_default(self):
        outcome = Outcome(applied=True)
        assert outcome.bytes_moved == 0
        assert outcome.count == 0
        assert outcome.reason == ""


class TestDecisionMetadata:
    """The class-level contracts the R109-R113 lint rules verify."""

    def all_decision_classes(self):
        import repro.sim.decisions as mod
        from repro.sim.decisions import Decision

        return [
            obj
            for obj in vars(mod).values()
            if isinstance(obj, type)
            and issubclass(obj, Decision)
            and obj is not Decision
        ]

    def test_every_decision_declares_domain_and_counters(self):
        from repro.sim.decisions import CONFLICT_DOMAIN_NAMES

        for cls in self.all_decision_classes():
            assert cls.domain in CONFLICT_DOMAIN_NAMES, cls.__name__
            assert isinstance(cls.counters, tuple), cls.__name__
            summary_fields = set(vars(PolicyActionSummary()).keys())
            for counter in cls.counters:
                assert counter in summary_fields, (
                    f"{cls.__name__}.counters names unknown summary "
                    f"field {counter!r}"
                )

    def test_mutating_domains_match_targets(self):
        # A decision claiming page/pt targets must declare that domain,
        # or the executor's conflict arbitration would miss it.
        from repro.sim.decisions import MigratePage, ReplicatePageTables

        assert MigratePage.domain == "page"
        assert MigratePage(0, 1).targets()[0][0] == "page"
        assert ReplicatePageTables.domain == "pt"

    def test_handler_table_covers_every_decision(self):
        handled = set(ActionExecutor.HANDLERS)
        assert handled == set(self.all_decision_classes())
        for method in ActionExecutor.HANDLERS.values():
            assert method.__name__.startswith("_apply_")
            assert hasattr(ActionExecutor, method.__name__)

    def test_metadata_does_not_change_frozen_semantics(self):
        decision = MigratePage(3, 1)
        with pytest.raises(Exception):
            decision.page_id = 4  # still a frozen dataclass
        # ClassVar metadata stays off the instance fields.
        assert "domain" not in vars(decision)
        assert "counters" not in vars(decision)

    def test_unknown_decision_type_is_an_error(self):
        from dataclasses import dataclass

        from repro.errors import SimulationError
        from repro.sim.decisions import Decision

        @dataclass(frozen=True)
        class Rogue(Decision):
            pass

        host = make_host()
        executor = ActionExecutor(host)
        with pytest.raises(SimulationError, match="unknown decision type"):
            executor.drive(gen_of(Rogue()), PolicyActionSummary())
