"""Tests for the simulation engine on small synthetic workloads."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.policy import LinuxPolicy
from repro.vm.layout import PageSize
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import PartitionedRegion, SharedRegion, StreamRegion

MIB = 1 << 20


def make_instance(machine, total_epochs=4, regions=None):
    regions = regions or [
        PartitionedRegion("p", 2 * MIB, 0.6),
        SharedRegion("s", 4 * MIB, 0.4),
    ]
    cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e7, dram_accesses=1e6)
    return WorkloadInstance("toy", machine, regions, cost, total_epochs=total_epochs)


def quick_cfg(**kwargs):
    defaults = dict(stream_length=256, seed=0)
    defaults.update(kwargs)
    return SimConfig(**defaults)


class TestBasicRun:
    def test_runs_to_completion(self, tiny_topo):
        sim = Simulation(tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg())
        result = sim.run()
        assert result.runtime_s > 0
        assert len(result.epoch_times_s) == 4
        assert result.policy == "linux-4k"

    def test_thp_backs_huge_pages(self, tiny_topo):
        sim = Simulation(tiny_topo, make_instance(tiny_topo), LinuxPolicy(True), quick_cfg())
        result = sim.run()
        assert result.final_page_counts[PageSize.SIZE_2M] > 0
        assert result.final_page_counts[PageSize.SIZE_4K] == 0

    def test_linux4k_uses_small_pages(self, tiny_topo):
        sim = Simulation(tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg())
        result = sim.run()
        assert result.final_page_counts[PageSize.SIZE_2M] == 0
        assert result.final_page_counts[PageSize.SIZE_4K] > 0

    def test_counters_populated(self, tiny_topo):
        sim = Simulation(tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg())
        result = sim.run()
        bank = result.bank
        assert bank.total("l2_data_misses") > 0
        assert bank.total("page_faults_4k") > 0
        assert 0 <= bank.lar() <= 100
        assert bank.imbalance() >= 0

    def test_fewer_faults_under_thp(self, tiny_topo):
        r4 = Simulation(
            tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg()
        ).run()
        r2 = Simulation(
            tiny_topo, make_instance(tiny_topo), LinuxPolicy(True), quick_cfg()
        ).run()
        assert (
            r2.bank.total("page_faults_2m")
            < r4.bank.total("page_faults_4k") / 100
        )

    def test_max_epochs_cap(self, tiny_topo):
        cfg = quick_cfg(max_epochs=2)
        sim = Simulation(tiny_topo, make_instance(tiny_topo, total_epochs=10), LinuxPolicy(False), cfg)
        result = sim.run()
        assert len(result.epoch_times_s) == 2

    def test_wrong_machine_rejected(self, tiny_topo, quad_topo):
        inst = make_instance(tiny_topo)
        with pytest.raises(SimulationError):
            Simulation(quad_topo, inst, LinuxPolicy(False), quick_cfg())

    def test_tracker_disabled(self, tiny_topo):
        cfg = quick_cfg(track_access_stats=False)
        sim = Simulation(tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), cfg)
        result = sim.run()
        assert result.hot_stats is None
        assert result.metrics().pamup_pct is None


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_topo):
        def run_once():
            return Simulation(
                tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg()
            ).run()

        a, b = run_once(), run_once()
        assert a.runtime_s == b.runtime_s
        assert a.bank.lar() == b.bank.lar()

    def test_different_seed_differs(self, tiny_topo):
        a = Simulation(
            tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg(seed=0)
        ).run()
        b = Simulation(
            tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg(seed=1)
        ).run()
        assert a.runtime_s != b.runtime_s


class TestTimeModel:
    def test_epoch_time_at_least_cpu_time(self, tiny_topo):
        inst = make_instance(tiny_topo)
        result = Simulation(tiny_topo, inst, LinuxPolicy(False), quick_cfg()).run()
        assert min(result.epoch_times_s) >= inst.cost.cpu_seconds

    def test_first_epoch_pays_allocation(self, tiny_topo):
        result = Simulation(
            tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg()
        ).run()
        # All premaps happen at epoch 0 for static regions.
        assert result.epoch_times_s[0] > result.epoch_times_s[-1]

    def test_growth_spreads_fault_time(self, tiny_topo):
        regions = [StreamRegion("st", 8 * MIB, 1.0, grow_epochs=4)]
        result = Simulation(
            tiny_topo,
            make_instance(tiny_topo, regions=regions),
            LinuxPolicy(False),
            quick_cfg(),
        ).run()
        faults = [e.page_faults_4k for e in result.bank.epochs]
        assert all(f > 0 for f in faults)

    def test_contended_traffic_slows_epochs(self, tiny_topo):
        # All traffic to one node (master-init) vs spread: the
        # master-init run must be slower.
        spread = [SharedRegion("s", 8 * MIB, 1.0)]
        hot = [SharedRegion("s", 8 * MIB, 1.0, master_init=True)]
        r_spread = Simulation(
            tiny_topo, make_instance(tiny_topo, regions=spread), LinuxPolicy(False), quick_cfg()
        ).run()
        r_hot = Simulation(
            tiny_topo, make_instance(tiny_topo, regions=hot), LinuxPolicy(False), quick_cfg()
        ).run()
        assert r_hot.runtime_s > r_spread.runtime_s

    def test_time_breakdown_sums_positive(self, tiny_topo):
        result = Simulation(
            tiny_topo, make_instance(tiny_topo), LinuxPolicy(False), quick_cfg()
        ).run()
        bd = result.bank.time_breakdown()
        assert bd["cpu"] > 0
        assert bd["dram"] > 0
        assert bd["fault"] > 0


class TestBackingFractions:
    def test_fraction_cache_consistency(self, tiny_topo):
        inst = make_instance(tiny_topo)
        sim = Simulation(tiny_topo, inst, LinuxPolicy(True), quick_cfg())
        sim.run()
        region = inst.regions[0]
        f4, f2, f1 = sim._backing_fractions(region.lo, region.hi)
        assert f2 == pytest.approx(1.0)
        assert f4 == pytest.approx(0.0)
        assert f1 == pytest.approx(0.0)

    def test_fractions_after_split(self, tiny_topo):
        inst = make_instance(tiny_topo)
        sim = Simulation(tiny_topo, inst, LinuxPolicy(True), quick_cfg())
        sim.run()
        region = inst.regions[0]
        chunk = region.lo // 512
        sim.asp.split_chunk(chunk)
        f4, f2, _ = sim._backing_fractions(region.lo, region.hi)
        assert 0 < f4 < 1
        assert f4 + f2 == pytest.approx(1.0)
