"""Bit-exact goldens pinning the vectorized epoch hot path.

The values below were captured from the original per-thread engine
loop (pre-vectorization) at the quick preset, seed 0, as hex float
literals — any drift in the batched bincount/`np.add.at` path, the
hoisted RNG spawning, or stream handling shows up as an exact
mismatch, not a tolerance failure.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunSettings, run_benchmark

# (workload, machine, policy, backing_1g) -> field -> float.hex()
GOLDENS = {
    ("CG.D", "B", "thp", False): {
        "runtime_s": "0x1.8b6639bf68193p+2",
        "first_epoch_s": "0x1.a4666aaa921dfp-2",
        "last_epoch_s": "0x1.89e6271b01e0dp-2",
        "tlb_misses": "0x1.23658fc080339p+23",
        "traffic_total": "0x1.3ab6680000000p+31",
        "faults_4k": "0x0.0p+0",
        "ibs_time": "0x0.0p+0",
        "dram_time": "0x1.0a10e8857b011p+8",
    },
    ("SSCA.20", "A", "carrefour-lp", False): {
        "runtime_s": "0x1.4d59258ed953bp+2",
        "first_epoch_s": "0x1.7c4d6eda8fad6p-2",
        "last_epoch_s": "0x1.19ce839c3a94ap-2",
        "tlb_misses": "0x1.3a9d3c9b781d6p+27",
        "traffic_total": "0x1.1e1a300000000p+30",
        "faults_4k": "0x0.0p+0",
        "ibs_time": "0x1.68021ecad3042p-2",
        "dram_time": "0x1.4ed124349d0d4p+6",
    },
    ("WC", "B", "linux-4k", False): {
        "runtime_s": "0x1.3bccca4bff9f4p+3",
        "first_epoch_s": "0x1.028288341d9a8p+2",
        "last_epoch_s": "0x1.6dbe0906be808p-2",
        "tlb_misses": "0x1.639933630eed8p+28",
        "traffic_total": "0x1.017df80000000p+31",
        "faults_4k": "0x1.f000000000000p+19",
        "ibs_time": "0x0.0p+0",
        "dram_time": "0x1.e10b35166a2cfp+7",
    },
    ("streamcluster", "B", "linux-4k", True): {
        "runtime_s": "0x1.01cc6916de335p+3",
        "first_epoch_s": "0x1.0f7c1ddd0fe37p-1",
        "last_epoch_s": "0x1.00e3aae11f090p-1",
        "tlb_misses": "0x0.0p+0",
        "traffic_total": "0x1.1e1a300000000p+31",
        "faults_4k": "0x0.0p+0",
        "ibs_time": "0x0.0p+0",
        "dram_time": "0x1.879f4ac50b355p+8",
    },
}


def _observe(result) -> dict:
    return {
        "runtime_s": result.runtime_s.hex(),
        "first_epoch_s": result.epoch_times_s[0].hex(),
        "last_epoch_s": result.epoch_times_s[-1].hex(),
        "tlb_misses": result.bank.total("tlb_misses").hex(),
        "traffic_total": float(
            sum(e.traffic.sum() for e in result.bank.epochs)
        ).hex(),
        "faults_4k": result.bank.total("page_faults_4k").hex(),
        "ibs_time": result.bank.total("time_ibs_s").hex(),
        "dram_time": result.bank.total("time_dram_s").hex(),
    }


@pytest.mark.parametrize("case", sorted(GOLDENS, key=repr), ids=lambda c: f"{c[0]}-{c[1]}-{c[2]}{'-1g' if c[3] else ''}")
def test_vectorized_engine_matches_pre_change_goldens(case, quick_settings):
    workload, machine, policy, backing_1g = case
    result = run_benchmark(
        workload, machine, policy, quick_settings, backing_1g=backing_1g
    )
    assert _observe(result) == GOLDENS[case]


def test_engine_deterministic_across_repeats(quick_settings):
    a = run_benchmark("Kmeans", "A", "thp", quick_settings, use_cache=False)
    b = run_benchmark("Kmeans", "A", "thp", quick_settings, use_cache=False)
    assert a.runtime_s == b.runtime_s
    assert a.epoch_times_s == b.epoch_times_s
    assert a.bank.total("tlb_misses") == b.bank.total("tlb_misses")
