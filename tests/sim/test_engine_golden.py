"""Bit-exact goldens pinning the vectorized epoch hot path.

The values below were captured from the original per-thread engine
loop (pre-vectorization) at the quick preset, seed 0, as hex float
literals — any drift in the batched bincount/`np.add.at` path, the
hoisted RNG spawning, or stream handling shows up as an exact
mismatch, not a tolerance failure.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import RunSettings, run_benchmark

# (workload, machine, policy, backing_1g) -> field -> float.hex()
GOLDENS = {
    ("CG.D", "B", "thp", False): {
        "runtime_s": "0x1.8b6639bf68193p+2",
        "first_epoch_s": "0x1.a4666aaa921dfp-2",
        "last_epoch_s": "0x1.89e6271b01e0dp-2",
        "tlb_misses": "0x1.23658fc080339p+23",
        "traffic_total": "0x1.3ab6680000000p+31",
        "faults_4k": "0x0.0p+0",
        "ibs_time": "0x0.0p+0",
        "dram_time": "0x1.0a10e8857b011p+8",
    },
    ("SSCA.20", "A", "carrefour-lp", False): {
        "runtime_s": "0x1.4d59258ed953bp+2",
        "first_epoch_s": "0x1.7c4d6eda8fad6p-2",
        "last_epoch_s": "0x1.19ce839c3a94ap-2",
        "tlb_misses": "0x1.3a9d3c9b781d6p+27",
        "traffic_total": "0x1.1e1a300000000p+30",
        "faults_4k": "0x0.0p+0",
        "ibs_time": "0x1.68021ecad3042p-2",
        "dram_time": "0x1.4ed124349d0d4p+6",
    },
    ("WC", "B", "linux-4k", False): {
        "runtime_s": "0x1.3bccca4bff9f4p+3",
        "first_epoch_s": "0x1.028288341d9a8p+2",
        "last_epoch_s": "0x1.6dbe0906be808p-2",
        "tlb_misses": "0x1.639933630eed8p+28",
        "traffic_total": "0x1.017df80000000p+31",
        "faults_4k": "0x1.f000000000000p+19",
        "ibs_time": "0x0.0p+0",
        "dram_time": "0x1.e10b35166a2cfp+7",
    },
    ("streamcluster", "B", "linux-4k", True): {
        "runtime_s": "0x1.01cc6916de335p+3",
        "first_epoch_s": "0x1.0f7c1ddd0fe37p-1",
        "last_epoch_s": "0x1.00e3aae11f090p-1",
        "tlb_misses": "0x0.0p+0",
        "traffic_total": "0x1.1e1a300000000p+31",
        "faults_4k": "0x0.0p+0",
        "ibs_time": "0x0.0p+0",
        "dram_time": "0x1.879f4ac50b355p+8",
    },
}


def _observe(result) -> dict:
    return {
        "runtime_s": result.runtime_s.hex(),
        "first_epoch_s": result.epoch_times_s[0].hex(),
        "last_epoch_s": result.epoch_times_s[-1].hex(),
        "tlb_misses": result.bank.total("tlb_misses").hex(),
        "traffic_total": float(
            sum(e.traffic.sum() for e in result.bank.epochs)
        ).hex(),
        "faults_4k": result.bank.total("page_faults_4k").hex(),
        "ibs_time": result.bank.total("time_ibs_s").hex(),
        "dram_time": result.bank.total("time_dram_s").hex(),
    }


@pytest.mark.parametrize("case", sorted(GOLDENS, key=repr), ids=lambda c: f"{c[0]}-{c[1]}-{c[2]}{'-1g' if c[3] else ''}")
def test_vectorized_engine_matches_pre_change_goldens(case, quick_settings):
    workload, machine, policy, backing_1g = case
    result = run_benchmark(
        workload, machine, policy, quick_settings, backing_1g=backing_1g
    )
    assert _observe(result) == GOLDENS[case]


def test_engine_deterministic_across_repeats(quick_settings):
    a = run_benchmark("Kmeans", "A", "thp", quick_settings, use_cache=False)
    b = run_benchmark("Kmeans", "A", "thp", quick_settings, use_cache=False)
    assert a.runtime_s == b.runtime_s
    assert a.epoch_times_s == b.epoch_times_s
    assert a.bank.total("tlb_misses") == b.bank.total("tlb_misses")


# --- Full policy matrix: decision-equivalence goldens -----------------
#
# One run per registry entry (SSCA.20 on machine A, quick preset,
# seed 0). The twelve pre-existing policies were captured from the
# per-policy mutation path *before* the decision-kernel refactor, so
# any behavioural drift in the decide/execute split shows up as an
# exact hex or fingerprint mismatch. The decision-native policies
# (pt-remote, replication, pressure-reclaim) are pinned from their
# introduction.

POLICY_MATRIX = {
    'linux-4k': {
        'runtime_s': '0x1.676fcccaeadbap+2',
        'daemon_time': '0x0.0p+0',
        'fingerprint': '31b53b6ce0d5756d59fcf48bc3168ef516f003342b2d6b1a1f7172a5d3b66901',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 0,
            'bytes_migrated': 0,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x0.0p+0',
            'n_notes': 0,
        },
    },
    'thp': {
        'runtime_s': '0x1.497f7a8b08110p+2',
        'daemon_time': '0x0.0p+0',
        'fingerprint': '973b430e4c04931eefbfcf22bae9111bfaa90b71312c8b9064c0196064e8c07e',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 0,
            'bytes_migrated': 0,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x0.0p+0',
            'n_notes': 0,
        },
    },
    'carrefour-4k': {
        'runtime_s': '0x1.750034c8237f1p+2',
        'daemon_time': '0x1.b284dbea08fcbp-1',
        'fingerprint': '0d8b76998001f5ec3b7c1fff3c5f3597bd92f2764448f901f740ba216c2ff36d',
        'actions': {
            'migrated_4k': 71407,
            'migrated_2m': 0,
            'bytes_migrated': 292483072,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 292,
            'bytes_replicated': 3588096,
            'compute_s': '0x1.566857016e951p-5',
            'n_notes': 0,
        },
    },
    'carrefour-2m': {
        'runtime_s': '0x1.2da3adbc75524p+2',
        'daemon_time': '0x1.23186c00b0df5p-2',
        'fingerprint': '5d4999d9fb5293c6dc8e8a2f36167797e32f052d7ca33164148c69c9e536e8b4',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 287,
            'bytes_migrated': 601882624,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x1.566857016e950p-5',
            'n_notes': 1,
        },
    },
    'carrefour-lp': {
        'runtime_s': '0x1.4d59258ed953bp+2',
        'daemon_time': '0x1.3ed6dc859ea88p+0',
        'fingerprint': 'b876ce4de0799eed202075bfc67a247b19395ceb6292925f52749c85dc5e09f5',
        'actions': {
            'migrated_4k': 36205,
            'migrated_2m': 281,
            'bytes_migrated': 737595392,
            'splits_2m': 384,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 266,
            'bytes_replicated': 3268608,
            'compute_s': '0x1.e99c7bcc2938dp-4',
            'n_notes': 1,
        },
    },
    'reactive-only': {
        'runtime_s': '0x1.713b07970975dp+2',
        'daemon_time': '0x1.e25b77c3d3c69p-1',
        'fingerprint': '2b7c55ca1bbeda6ea7a0d1e3cf36242af38cdd4bf046a85055fb7fd3c5130429',
        'actions': {
            'migrated_4k': 71126,
            'migrated_2m': 0,
            'bytes_migrated': 291332096,
            'splits_2m': 384,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 299,
            'bytes_replicated': 3674112,
            'compute_s': '0x1.ac026cc1ca3a4p-4',
            'n_notes': 0,
        },
    },
    'conservative-only': {
        'runtime_s': '0x1.41d5b4eeaba5dp+2',
        'daemon_time': '0x1.2cd425b1a6fb9p+0',
        'fingerprint': '72a80982ce2b52fac547c43112a6f7a05a69cb92076b5ad187c844ec81cbb6ad',
        'actions': {
            'migrated_4k': 19799,
            'migrated_2m': 274,
            'bytes_migrated': 655716352,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 245,
            'bytes_replicated': 3010560,
            'compute_s': '0x1.87b06309ba93fp-5',
            'n_notes': 1,
        },
    },
    'carrefour-lp-lwp': {
        'runtime_s': '0x1.50591f3108ec9p+2',
        'daemon_time': '0x1.6264aaefe6794p+0',
        'fingerprint': 'a656cb7af6990cfeb392a72e5c9dcc1bbb56d4fd41dd7bb99a3dc93a12859669',
        'actions': {
            'migrated_4k': 44376,
            'migrated_2m': 255,
            'bytes_migrated': 716537856,
            'splits_2m': 384,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 486,
            'bytes_replicated': 5971968,
            'compute_s': '0x1.2dfd694ccab3fp-3',
            'n_notes': 2,
        },
    },
    'autonuma': {
        'runtime_s': '0x1.49bcafe1aa87bp+2',
        'daemon_time': '0x1.8534c97d90632p-2',
        'fingerprint': '7e1b6b84d12fd90f3f0d87aa486b7a704deeaac72b3bac6ab82493dadfe765ca',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 243,
            'bytes_migrated': 509607936,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x1.25c44a474beeep-2',
            'n_notes': 0,
        },
    },
    'autonuma-4k': {
        'runtime_s': '0x1.6ce1855e7bb62p+2',
        'daemon_time': '0x1.3957d58afea4ap-2',
        'fingerprint': '3fb1f441639fb54d95a65d781a61bfda7792ba54f73e19d237cadcec8604d134',
        'actions': {
            'migrated_4k': 4873,
            'migrated_2m': 0,
            'bytes_migrated': 19959808,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x1.133a548fa44d5p-2',
            'n_notes': 0,
        },
    },
    'interleave-4k': {
        'runtime_s': '0x1.767be86fc2badp+2',
        'daemon_time': '0x0.0p+0',
        'fingerprint': '8134ce6e733a91898c2974794d47000855f215211752ea207c732eef97d8ec29',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 0,
            'bytes_migrated': 0,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x0.0p+0',
            'n_notes': 0,
        },
    },
    'interleave-thp': {
        'runtime_s': '0x1.2c77de4df755dp+2',
        'daemon_time': '0x0.0p+0',
        'fingerprint': '8526ed2c455ecb9b95ff427564b31b511b37a679449ef0601b77a5cdd2dae9fd',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 0,
            'bytes_migrated': 0,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x0.0p+0',
            'n_notes': 0,
        },
    },
    'pt-remote': {
        'runtime_s': '0x1.9cc5e7debd40ap+2',
        'daemon_time': '0x0.0p+0',
        'fingerprint': '7a7e330e4980a7ca4b2b96259dabf7656cdaeef08c3796bd27671434dfd21a8e',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 0,
            'bytes_migrated': 0,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x0.0p+0',
            'n_notes': 0,
        },
    },
    'pressure-reclaim': {
        # Solo SSCA.20 on machine A never crosses the low watermark, so
        # the policy's matrix entry pins the do-nothing fast path; the
        # reclaim behaviour itself is pinned by the scenario goldens.
        'runtime_s': '0x1.497f7a8b08110p+2',
        'daemon_time': '0x0.0p+0',
        'fingerprint': 'd484cfe240a0c0ae6387d61109bdbe48b7c3ee3e7a4e8d68e274c73b49e87031',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 0,
            'bytes_migrated': 0,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 0,
            'bytes_replicated': 0,
            'compute_s': '0x0.0p+0',
            'n_notes': 0,
        },
    },
    'replication': {
        'runtime_s': '0x1.570ddb34ecf81p+2',
        'daemon_time': '0x1.807408da51ed2p-16',
        'fingerprint': '105664ec09ce596e1d75fcd962c9fe513b9eb18aa16641f71a95a5f6e7a975a5',
        'actions': {
            'migrated_4k': 0,
            'migrated_2m': 0,
            'bytes_migrated': 0,
            'splits_2m': 0,
            'splits_1g': 0,
            'collapses_2m': 0,
            'replicated_pages': 3,
            'bytes_replicated': 12288,
            'compute_s': '0x0.0p+0',
            'n_notes': 0,
        },
    },
}

MATRIX_WORKLOAD, MATRIX_MACHINE = "SSCA.20", "A"


def _observe_actions(result) -> dict:
    return {
        "migrated_4k": sum(s.migrated_4k for _, s in result.action_log),
        "migrated_2m": sum(s.migrated_2m for _, s in result.action_log),
        "bytes_migrated": sum(
            s.bytes_migrated for _, s in result.action_log
        ),
        "splits_2m": sum(s.splits_2m for _, s in result.action_log),
        "splits_1g": sum(s.splits_1g for _, s in result.action_log),
        "collapses_2m": sum(s.collapses_2m for _, s in result.action_log),
        "replicated_pages": sum(
            s.replicated_pages for _, s in result.action_log
        ),
        "bytes_replicated": sum(
            s.bytes_replicated for _, s in result.action_log
        ),
        "compute_s": float(
            sum(s.compute_s for _, s in result.action_log)
        ).hex(),
        "n_notes": sum(len(s.notes) for _, s in result.action_log),
    }


def test_matrix_covers_whole_registry():
    from repro.experiments.configs import POLICIES

    assert set(POLICY_MATRIX) == set(POLICIES)


@pytest.mark.parametrize("policy", sorted(POLICY_MATRIX))
def test_policy_matrix_decision_equivalence(policy, quick_settings):
    golden = POLICY_MATRIX[policy]
    result = run_benchmark(
        MATRIX_WORKLOAD, MATRIX_MACHINE, policy, quick_settings
    )
    assert result.runtime_s.hex() == golden["runtime_s"]
    assert (
        result.bank.total("daemon_time_s").hex() == golden["daemon_time"]
    )
    assert _observe_actions(result) == golden["actions"]


@pytest.mark.parametrize("policy", sorted(POLICY_MATRIX))
def test_policy_matrix_fingerprints_pinned(policy, quick_settings):
    """The persistent-cache key is part of the contract: refactors that
    accidentally change ``SimConfig`` hashing (e.g. by letting the
    ``trace`` flag leak into the key) would silently orphan every
    cached result."""
    fp = quick_settings.fingerprint(
        MATRIX_WORKLOAD, f"machine-{MATRIX_MACHINE}", policy, False
    )
    assert fp == POLICY_MATRIX[policy]["fingerprint"]
