"""Tests for the policy interface, action summaries and result types."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hardware.counters import CounterBank
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.policy import LinuxPolicy, PlacementPolicy, PolicyActionSummary
from repro.sim.results import RunMetrics, SimulationResult
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import SharedRegion

MIB = 1 << 20


def make_sim(topo, policy, epochs=3):
    cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e6, dram_accesses=1e5)
    inst = WorkloadInstance(
        "toy", topo, [SharedRegion("s", 4 * MIB, 1.0)], cost, total_epochs=epochs
    )
    return Simulation(topo, inst, policy, SimConfig(stream_length=256))


class CountingPolicy(PlacementPolicy):
    """Policy that records every daemon invocation."""

    name = "counting"
    interval_s = 0.05  # fires roughly every epoch

    def __init__(self):
        self.calls = 0
        self.sample_counts = []

    def on_interval(self, sim, samples, window):
        self.calls += 1
        self.sample_counts.append(len(samples))
        return PolicyActionSummary(compute_s=0.001)


class TestPolicyDaemon:
    def test_daemon_invoked_at_interval(self, tiny_topo):
        policy = CountingPolicy()
        make_sim(tiny_topo, policy, epochs=5).run()
        assert policy.calls >= 3

    def test_daemon_receives_samples(self, tiny_topo):
        policy = CountingPolicy()
        make_sim(tiny_topo, policy, epochs=5).run()
        assert sum(policy.sample_counts) > 0

    def test_no_daemon_for_linux(self, tiny_topo):
        sim = make_sim(tiny_topo, LinuxPolicy(False))
        result = sim.run()
        assert result.action_log == []

    def test_linux_skips_ibs_collection(self, tiny_topo):
        sim = make_sim(tiny_topo, LinuxPolicy(False))
        sim.run()
        assert sim.ibs.rate == 0.0

    def test_action_cost_charged_next_epoch(self, tiny_topo):
        class ExpensivePolicy(CountingPolicy):
            def on_interval(self, sim, samples, window):
                super().on_interval(sim, samples, window)
                return PolicyActionSummary(compute_s=10.0)

        cheap = make_sim(tiny_topo, CountingPolicy(), epochs=4).run()
        costly = make_sim(tiny_topo, ExpensivePolicy(), epochs=4).run()
        assert costly.runtime_s > cheap.runtime_s + 1.0


class TestPolicyActionSummary:
    def test_merge(self):
        a = PolicyActionSummary(migrated_4k=1, bytes_migrated=4096, compute_s=0.1)
        b = PolicyActionSummary(migrated_2m=2, splits_2m=3, notes=["x"])
        a.merge(b)
        assert a.migrated_4k == 1
        assert a.migrated_2m == 2
        assert a.splits_2m == 3
        assert a.notes == ["x"]


class TestRunMetrics:
    def test_improvement_math(self):
        fast = RunMetrics(
            runtime_s=5.0, lar_pct=50, imbalance_pct=0, pct_l2_walk=0,
            fault_time_total_s=0, max_fault_pct=0, tlb_misses=0, dram_requests=0,
        )
        slow = RunMetrics(
            runtime_s=10.0, lar_pct=50, imbalance_pct=0, pct_l2_walk=0,
            fault_time_total_s=0, max_fault_pct=0, tlb_misses=0, dram_requests=0,
        )
        assert fast.improvement_over(slow) == pytest.approx(100.0)
        assert slow.improvement_over(fast) == pytest.approx(-50.0)

    def test_zero_runtime_rejected(self):
        broken = RunMetrics(
            runtime_s=0.0, lar_pct=0, imbalance_pct=0, pct_l2_walk=0,
            fault_time_total_s=0, max_fault_pct=0, tlb_misses=0, dram_requests=0,
        )
        with pytest.raises(SimulationError):
            broken.improvement_over(broken)


class TestSimulationResult:
    def test_metrics_aggregate_actions(self, tiny_topo):
        result = SimulationResult(
            workload="w",
            machine="m",
            policy="p",
            runtime_s=1.0,
            epoch_times_s=[1.0],
            bank=CounterBank(2, 4),
            hot_stats=None,
            action_log=[
                (0.5, PolicyActionSummary(migrated_4k=3, splits_2m=1)),
                (1.0, PolicyActionSummary(migrated_2m=2)),
            ],
            final_page_counts={},
        )
        m = result.metrics()
        assert m.pages_migrated_4k == 3
        assert m.pages_migrated_2m == 2
        assert m.pages_split_2m == 1

    def test_describe(self, tiny_topo):
        result = make_sim(tiny_topo, LinuxPolicy(False)).run()
        text = result.describe()
        assert "toy" in text
        assert "linux-4k" in text


class TestStaticInterleave:
    def test_interleave_balances_allocation(self, tiny_topo):
        from repro.sim.policy import LinuxPolicy

        sim = make_sim(tiny_topo, LinuxPolicy(thp=True, interleave=True))
        result = sim.run()
        assert result.policy == "interleave-thp"
        assert result.bank.imbalance() < 10.0

    def test_interleave_4k_name(self):
        from repro.sim.policy import LinuxPolicy

        assert LinuxPolicy(thp=False, interleave=True).name == "interleave-4k"

    def test_first_touch_differs_from_interleave(self, tiny_topo):
        from repro.sim.policy import LinuxPolicy

        ft = make_sim(tiny_topo, LinuxPolicy(thp=True)).run()
        il = make_sim(tiny_topo, LinuxPolicy(thp=True, interleave=True)).run()
        # A shared region first-touched by hashed stripes vs round-robin
        # chunks gives different traffic matrices.
        assert ft.bank.lar() != il.bank.lar()


class TestSteadyMetrics:
    def test_steady_bank_skips_warmup(self, tiny_topo):
        result = make_sim(tiny_topo, LinuxPolicy(False), epochs=10).run()
        steady = result.steady_bank(0.5)
        assert len(steady.epochs) == 5

    def test_invalid_fraction(self, tiny_topo):
        result = make_sim(tiny_topo, LinuxPolicy(False)).run()
        with pytest.raises(SimulationError):
            result.steady_bank(1.0)

    def test_steady_values_bounded(self, tiny_topo):
        result = make_sim(tiny_topo, LinuxPolicy(False)).run()
        assert 0 <= result.steady_lar() <= 100
        assert result.steady_imbalance() >= 0
