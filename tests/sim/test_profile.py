"""Tests for the per-phase engine profiler (:mod:`repro.sim.profile`).

The contract under test: profiling observes, never perturbs.  A
profiled run must be bit-identical to an unprofiled one and share its
cache entries, and the recorded phases must account for the full
bracketed epoch time.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.cache import normalized_config
from repro.experiments.runner import execute_run
from repro.sim.config import SimConfig
from repro.sim.profile import (
    PHASES,
    PROFILE_ENV,
    PhaseTimer,
    profile_enabled,
    run_profiled,
)


def _signature(result):
    """Everything the determinism guarantee covers, comparably packed."""
    return (
        result.runtime_s,
        tuple(result.epoch_times_s),
        result.bank.total("tlb_misses"),
        result.bank.total("page_faults_4k"),
        result.bank.total("page_faults_2m"),
        result.bank.total("time_dram_s"),
        result.bank.total("time_walk_s"),
        result.bank.total("time_ibs_s"),
        float(sum(e.traffic.sum() for e in result.bank.epochs)),
    )


class TestPhaseTimer:
    def test_laps_accumulate(self):
        timer = PhaseTimer()
        timer.epoch_start()
        timer.lap("premap")
        timer.lap("streams")
        timer.epoch_end()
        timer.epoch_start()
        timer.lap("premap")
        timer.epoch_end()
        assert timer.n_epochs == 2
        assert timer.phase_s["premap"] >= 0.0
        assert timer.total_s == pytest.approx(sum(timer.phase_s.values()))

    def test_unknown_phase_rejected(self):
        timer = PhaseTimer()
        timer.epoch_start()
        with pytest.raises(ValueError):
            timer.lap("warp-drive")

    def test_lap_outside_epoch_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().lap("premap")
        with pytest.raises(ValueError):
            PhaseTimer().epoch_end()

    def test_summary_shape(self):
        timer = PhaseTimer()
        timer.epoch_start()
        timer.lap("streams")
        timer.epoch_end()
        summary = timer.summary()
        assert summary["n_epochs"] == 1
        assert set(summary["phases_s"]) == set(PHASES)
        assert set(summary["phases_pct"]) == set(PHASES)
        assert summary["total_s"] >= 0.0

    def test_render_lists_all_phases(self):
        timer = PhaseTimer()
        timer.epoch_start()
        timer.epoch_end()
        text = timer.render()
        for phase in PHASES:
            assert phase in text


class TestProfileEnabled:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profile_enabled(SimConfig())
        assert not profile_enabled(None)

    def test_config_flag(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert profile_enabled(SimConfig(profile=True))

    def test_env_wins_on(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profile_enabled(SimConfig(profile=False))

    def test_env_wins_off(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "0")
        assert not profile_enabled(SimConfig(profile=True))


class TestResultNeutrality:
    def test_env_profiled_run_bit_identical(self, quick_settings, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        plain = execute_run("Kmeans", "A", "thp", quick_settings)
        monkeypatch.setenv(PROFILE_ENV, "1")
        profiled = execute_run("Kmeans", "A", "thp", quick_settings)
        assert _signature(plain) == _signature(profiled)

    def test_config_profiled_run_bit_identical(self, quick_settings, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        plain = execute_run("Kmeans", "A", "carrefour-lp", quick_settings)
        cfg = dataclasses.replace(quick_settings.config, profile=True)
        profiled = execute_run(
            "Kmeans", "A", "carrefour-lp",
            dataclasses.replace(quick_settings, config=cfg),
        )
        assert _signature(plain) == _signature(profiled)

    def test_profile_flag_shares_cache_entries(self, quick_settings):
        cfg_on = dataclasses.replace(quick_settings.config, profile=True)
        on = dataclasses.replace(quick_settings, config=cfg_on)
        assert normalized_config(cfg_on) == normalized_config(quick_settings.config)
        assert on.cache_key("CG.D", "machine-A", "thp", False) == (
            quick_settings.cache_key("CG.D", "machine-A", "thp", False)
        )
        assert on.fingerprint("CG.D", "machine-A", "thp", False) == (
            quick_settings.fingerprint("CG.D", "machine-A", "thp", False)
        )


class TestRunProfiled:
    def test_phases_account_for_epochs(self, quick_settings, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        result, timer = run_profiled("Kmeans", "A", "thp", quick_settings)
        assert timer.n_epochs == len(result.epoch_times_s)
        assert timer.total_s > 0.0
        assert timer.total_s == pytest.approx(sum(timer.phase_s.values()))
        assert all(seconds >= 0.0 for seconds in timer.phase_s.values())

    def test_forced_on_despite_env_off(self, quick_settings, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "0")
        result, timer = run_profiled("Kmeans", "A", "thp", quick_settings)
        assert timer.n_epochs == len(result.epoch_times_s)

    def test_matches_unprofiled_execute_run(self, quick_settings, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        plain = execute_run("Kmeans", "B", "linux-4k", quick_settings)
        profiled, _ = run_profiled("Kmeans", "B", "linux-4k", quick_settings)
        assert _signature(plain) == _signature(profiled)


class TestProfileCli:
    def test_cli_profile_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        out_path = tmp_path / "profile.json"
        rc = cli_main(
            ["profile", "Kmeans", "--quick", "--json", str(out_path)]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "phase" in captured
        payload = json.loads(out_path.read_text())
        assert payload["run"] == "Kmeans@A/thp"
        profile = payload["profile"]
        assert set(profile["phases_s"]) == set(PHASES)
        assert profile["total_s"] == pytest.approx(
            sum(profile["phases_s"].values()), abs=1e-4
        )
        assert payload["simulated_runtime_s"] > 0
