"""Unit tests for the engine's TLB-group classification.

The classification turns workload-declared TLB geometry (distinct
translations per size class, run length, sequential flag) plus the
address space's *current backing composition* into the grouped
popularity vectors the TLB model consumes.  These rules carry the
paper's core mechanism — THP's TLB benefit — so they get direct tests.
"""

import numpy as np
import pytest

from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.policy import LinuxPolicy
from repro.vm.layout import GRANULES_PER_2M, PageSize
from repro.workloads.base import CostProfile, TlbGroup, WorkloadInstance
from repro.workloads.regions import SharedRegion

MIB = 1 << 20


@pytest.fixture
def sim(tiny_topo):
    cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e6, dram_accesses=1e5)
    inst = WorkloadInstance(
        "toy", tiny_topo, [SharedRegion("s", 8 * MIB, 1.0)], cost, total_epochs=1
    )
    simulation = Simulation(
        tiny_topo, inst, LinuxPolicy(True), SimConfig(stream_length=128)
    )
    nodes = tiny_topo.core_to_node[: inst.n_threads].astype(np.int64)
    inst.premap_epoch(0, simulation.asp, nodes, thp_alloc=True)
    return simulation


def group(lo, hi, run_length=1.0, sequential=False, weight=1.0):
    return TlbGroup(
        lo=lo,
        hi=hi,
        weight=weight,
        distinct_4k=float(hi - lo),
        distinct_2m=float(hi - lo) / 512.0,
        distinct_1g=1.0,
        run_length=run_length,
        sequential=sequential,
    )


class TestClassification:
    def test_fully_huge_extent_classifies_as_2m(self, sim):
        region = sim.instance.regions[0]
        out = sim._classify_tlb_groups(
            [group(region.lo, region.hi)], {}
        )
        assert PageSize.SIZE_2M in out
        assert PageSize.SIZE_4K not in out

    def test_split_extent_mixes_classes(self, sim):
        region = sim.instance.regions[0]
        sim.asp.split_chunk(region.lo // GRANULES_PER_2M)
        out = sim._classify_tlb_groups([group(region.lo, region.hi)], {})
        assert PageSize.SIZE_4K in out
        assert PageSize.SIZE_2M in out
        w4 = out[PageSize.SIZE_4K][1].sum()
        w2 = out[PageSize.SIZE_2M][1].sum()
        assert w4 + w2 == pytest.approx(1.0)

    def test_sequential_run_amplification(self, sim):
        region = sim.instance.regions[0]
        seq = sim._classify_tlb_groups(
            [group(region.lo, region.hi, run_length=4.0, sequential=True)], {}
        )
        rand = sim._classify_tlb_groups(
            [group(region.lo, region.hi, run_length=4.0, sequential=False)], {}
        )
        run_seq = seq[PageSize.SIZE_2M][2][0]
        run_rand = rand[PageSize.SIZE_2M][2][0]
        # Sequential sweeps keep hitting the same huge page: the run
        # length scales by distinct_4k/distinct_2m = 512.
        assert run_seq == pytest.approx(4.0 * 512.0)
        assert run_rand == pytest.approx(4.0)

    def test_zero_weight_groups_dropped(self, sim):
        region = sim.instance.regions[0]
        out = sim._classify_tlb_groups(
            [group(region.lo, region.hi, weight=0.0)], {}
        )
        assert out == {}

    def test_fraction_cache_reused(self, sim):
        region = sim.instance.regions[0]
        cache = {}
        sim._classify_tlb_groups([group(region.lo, region.hi)], cache)
        assert (region.lo, region.hi) in cache
        # Mutate the cache entry: a second call must reuse it verbatim.
        cache[(region.lo, region.hi)] = (1.0, 0.0, 0.0)
        out = sim._classify_tlb_groups([group(region.lo, region.hi)], cache)
        assert PageSize.SIZE_4K in out
        assert PageSize.SIZE_2M not in out

    def test_unmapped_extent_defaults_to_4k(self, tiny_topo):
        cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e6, dram_accesses=1e5)
        inst = WorkloadInstance(
            "toy2", tiny_topo, [SharedRegion("s", 8 * MIB, 1.0)], cost, total_epochs=1
        )
        fresh = Simulation(
            tiny_topo, inst, LinuxPolicy(True), SimConfig(stream_length=128)
        )
        # Nothing premapped yet: classification conservatively treats
        # the extent as 4KB-backed.
        out = fresh._classify_tlb_groups([group(0, 512)], {})
        assert PageSize.SIZE_4K in out
        assert PageSize.SIZE_2M not in out


class TestBackingFractions:
    def test_fractions_sum_to_one(self, sim):
        region = sim.instance.regions[0]
        f4, f2, f1 = sim._backing_fractions(region.lo, region.hi)
        assert f4 + f2 + f1 == pytest.approx(1.0)

    def test_partial_split(self, sim):
        region = sim.instance.regions[0]
        chunks = (region.hi - region.lo) // GRANULES_PER_2M
        sim.asp.split_chunk(region.lo // GRANULES_PER_2M)
        f4, f2, _ = sim._backing_fractions(region.lo, region.hi)
        assert f4 == pytest.approx(1.0 / chunks)
        assert f2 == pytest.approx(1.0 - 1.0 / chunks)
