"""Decision-trace tests: neutrality, env overrides, JSONL shape."""

import json

import pytest

from repro.experiments.runner import run_benchmark
from repro.sim.decisions import MigratePage, Outcome
from repro.sim.trace import (
    TRACE_ENV,
    TRACE_FILE_ENV,
    DecisionTrace,
    run_traced,
    trace_enabled,
)


class TestTraceEnabled:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert not trace_enabled(None)

    def test_config_flag(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)

        class Cfg:
            trace = True

        assert trace_enabled(Cfg())

    def test_env_forces_on(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        assert trace_enabled(None)

    def test_env_forces_off_over_config(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "0")

        class Cfg:
            trace = True

        assert not trace_enabled(Cfg())


class TestDecisionTrace:
    def _tally(self):
        trace = DecisionTrace({"policy": "x"})
        trace.record(
            1.0, 0, "a", MigratePage(5, 1), Outcome(True, bytes_moved=4096)
        )
        trace.record(
            2.0, 1, "b", MigratePage(6, 0), Outcome(False, reason="conflict")
        )
        return trace

    def test_counts_by_kind(self):
        assert self._tally().counts() == {"MigratePage": 2}

    def test_render_mentions_applied_and_skipped(self):
        text = self._tally().render()
        assert "2 decisions recorded" in text
        assert "1 applied" in text and "1 skipped" in text

    def test_jsonl_shape(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._tally().write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        header = json.loads(lines[0])
        assert header == {"trace": {"policy": "x"}}
        rec = json.loads(lines[1])
        assert rec["decision"]["kind"] == "MigratePage"
        assert rec["applied"] is True and rec["bytes"] == 4096
        assert json.loads(lines[2])["reason"] == "conflict"

    def test_flush_env_appends(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(TRACE_FILE_ENV, str(path))
        self._tally().flush_env()
        self._tally().flush_env()
        assert len(path.read_text().splitlines()) == 6

    def test_flush_env_noop_when_unset(self, monkeypatch):
        monkeypatch.delenv(TRACE_FILE_ENV, raising=False)
        self._tally().flush_env()  # must not raise or write anywhere


class TestTraceNeutrality:
    def test_traced_run_bit_identical(self, quick_settings):
        baseline = run_benchmark("Kmeans", "A", "carrefour-2m", quick_settings)
        result, trace = run_traced(
            "Kmeans", "A", "carrefour-2m", quick_settings
        )
        assert result.runtime_s == baseline.runtime_s
        assert result.epoch_times_s == baseline.epoch_times_s
        assert trace.records, "daemon policy must have recorded decisions"

    def test_trace_excluded_from_cache_key(self, quick_settings):
        import dataclasses

        from repro.experiments.runner import RunSettings

        traced = RunSettings(
            config=dataclasses.replace(quick_settings.config, trace=True),
            seed=quick_settings.seed,
        )
        assert traced.fingerprint(
            "Kmeans", "machine-A", "thp", False
        ) == quick_settings.fingerprint("Kmeans", "machine-A", "thp", False)

    def test_untraced_run_has_no_tracer(self, quick_settings, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        result = run_benchmark(
            "Kmeans", "A", "thp", quick_settings, use_cache=False
        )
        assert result is not None  # plain runs carry no trace state

    def test_env_off_does_not_break_run_traced(
        self, quick_settings, monkeypatch
    ):
        # REPRO_TRACE=0 suppresses the engine-owned tracer; run_traced
        # installs its own, so explicit trace runs still observe.
        monkeypatch.setenv(TRACE_ENV, "0")
        _, trace = run_traced("Kmeans", "A", "carrefour-2m", quick_settings)
        assert isinstance(trace, DecisionTrace)
        assert trace.records


class TestRunTraced:
    def test_context_header(self, quick_settings):
        _, trace = run_traced("Kmeans", "A", "thp", quick_settings)
        assert trace.context["workload"] == "Kmeans"
        assert trace.context["policy"] == "thp"
        assert trace.context["seed"] == quick_settings.seed

    def test_composed_policy_traces_sources(self, quick_settings):
        _, trace = run_traced(
            "Kmeans", "A", "carrefour-2m+replication", quick_settings
        )
        sources = {rec["source"] for rec in trace.records}
        assert "carrefour-2m" in sources
        assert "replication" in sources
        kinds = trace.counts()
        assert kinds.get("ReplicatePageTables", 0) >= 1
