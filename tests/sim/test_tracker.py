"""Tests for the ground-truth access tracker (PAMUP / NHP / PSP)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.tracker import AccessTracker
from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M

GIB = 1 << 30


def make_asp(n_chunks=8):
    phys = PhysicalMemory([GIB, GIB])
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


class TestTracker:
    def test_empty_stats(self):
        tracker = AccessTracker(1024)
        asp = make_asp(2)
        stats = tracker.hot_page_stats(asp)
        assert stats.pamup_pct == 0.0
        assert stats.n_hot_pages == 0
        assert stats.psp_pct == 0.0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            AccessTracker(0)

    def test_pamup_4k(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        tracker = AccessTracker(asp.n_granules)
        tracker.update(0, np.array([0, 0, 0, 1]), 1.0)
        stats = tracker.hot_page_stats(asp)
        assert stats.pamup_pct == pytest.approx(75.0)

    def test_pamup_coalesces_under_huge(self):
        asp = make_asp()
        tracker = AccessTracker(asp.n_granules)
        # Accesses spread over 4 granules of the same 2MB chunk.
        g = np.array([0, 100, 200, 300])
        tracker.update(0, g, 1.0)
        asp.premap_pattern_4k(0, np.zeros(512, dtype=np.int8))
        stats_4k = tracker.hot_page_stats(asp)
        assert stats_4k.pamup_pct == pytest.approx(25.0)
        asp.collapse_chunk(0)
        stats_2m = tracker.hot_page_stats(asp)
        assert stats_2m.pamup_pct == pytest.approx(100.0)

    def test_nhp_threshold(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0, 0, 1], dtype=np.int8))
        tracker = AccessTracker(asp.n_granules)
        # Chunk 0: 50%, chunk 1: 45%, chunk 2: 5%.
        tracker.update(0, np.repeat([0, 512, 1024], [50, 45, 5]), 1.0)
        stats = tracker.hot_page_stats(asp, hot_threshold_pct=6.0)
        assert stats.n_hot_pages == 2

    def test_psp_4k_requires_two_threads(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        tracker = AccessTracker(asp.n_granules)
        tracker.update(0, np.array([0, 1]), 1.0)
        tracker.update(1, np.array([1, 2]), 1.0)
        stats = tracker.hot_page_stats(asp)
        # Granule 1 shared: 2 of 4 accesses.
        assert stats.psp_pct == pytest.approx(50.0)

    def test_psp_rises_at_2m_granularity(self):
        asp = make_asp()
        tracker = AccessTracker(asp.n_granules)
        # Threads touch different granules of the same chunk.
        tracker.update(0, np.array([0, 0]), 1.0)
        tracker.update(1, np.array([100, 100]), 1.0)
        asp.premap_pattern_4k(0, np.zeros(512, dtype=np.int8))
        assert tracker.hot_page_stats(asp).psp_pct == pytest.approx(0.0)
        asp.collapse_chunk(0)
        assert tracker.hot_page_stats(asp).psp_pct == pytest.approx(100.0)

    def test_weight_scaling(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(2, dtype=np.int8))
        tracker = AccessTracker(asp.n_granules)
        tracker.update(0, np.array([0]), 10.0)
        tracker.update(0, np.array([1]), 1.0)
        stats = tracker.hot_page_stats(asp)
        assert stats.pamup_pct == pytest.approx(100.0 * 10 / 11)

    def test_empty_update_noop(self):
        tracker = AccessTracker(1024)
        tracker.update(0, np.empty(0, dtype=np.int64), 1.0)
        assert tracker.weight.sum() == 0

    def test_str_rendering(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        tracker = AccessTracker(asp.n_granules)
        tracker.update(0, np.array([0]), 1.0)
        assert "PAMUP" in str(tracker.hot_page_stats(asp))
