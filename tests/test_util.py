"""Tests for shared helpers and the error hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro._util import (
    SeedHasher,
    as_int_array,
    ceil_div,
    human_bytes,
    pct,
    rng_for,
    stable_seed,
)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)

    def test_order_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_part_boundaries_matter(self):
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_64_bit_range(self):
        seed = stable_seed("x")
        assert 0 <= seed < 2**64


class TestRngFor:
    def test_same_parts_same_stream(self):
        a = rng_for("w", 0).random(5)
        b = rng_for("w", 0).random(5)
        assert np.array_equal(a, b)

    def test_different_parts_differ(self):
        a = rng_for("w", 0).random(5)
        b = rng_for("w", 1).random(5)
        assert not np.array_equal(a, b)


class TestSeedHasher:
    """The midstate shortcut must be indistinguishable from the full hash."""

    def test_seed_matches_stable_seed(self):
        hasher = SeedHasher(0, 7, "CG.D", "stream")
        for thread in (0, 3, 43):
            for epoch in (0, 15, 9999):
                assert hasher.seed(thread, epoch) == stable_seed(
                    0, 7, "CG.D", "stream", thread, epoch
                )

    def test_non_ascii_and_structured_parts(self):
        hasher = SeedHasher("naïve", (1, 2))
        assert hasher.seed("ü", -3) == stable_seed("naïve", (1, 2), "ü", -3)

    def test_empty_suffix(self):
        assert SeedHasher("a", 1).seed() == stable_seed("a", 1)

    def test_rng_matches_rng_for(self):
        hasher = SeedHasher("w", "stream")
        a = hasher.rng_for(2, 5).random(8)
        b = rng_for("w", "stream", 2, 5).random(8)
        assert np.array_equal(a, b)

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            SeedHasher()


class TestAsIntArray:
    def test_scalar_becomes_1d(self):
        arr = as_int_array(7)
        assert arr.shape == (1,)
        assert arr.dtype == np.int64

    def test_list(self):
        arr = as_int_array([1, 2, 3])
        assert arr.tolist() == [1, 2, 3]


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestFormatting:
    def test_pct(self):
        assert pct(12.345) == "12.3%"

    def test_human_bytes_small(self):
        assert human_bytes(512) == "512 B"

    def test_human_bytes_kib(self):
        assert human_bytes(2048) == "2.0 KiB"

    def test_human_bytes_gib(self):
        assert human_bytes(7 * (1 << 30)) == "7.0 GiB"

    def test_human_bytes_huge(self):
        assert "TiB" in human_bytes(1 << 45)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.ConfigurationError,
            errors.AllocationError,
            errors.MappingError,
            errors.SimulationError,
            errors.UnknownWorkloadError,
            errors.UnknownPolicyError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(errors.UnknownWorkloadError, KeyError)
        assert issubclass(errors.UnknownPolicyError, KeyError)
