"""Tests for the multi-size address space, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.vm.address_space import (
    AddressSpace,
    BACKING_ID_1G_OFFSET,
    BACKING_ID_2M_OFFSET,
)
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_1G, GRANULES_PER_2M, PAGE_2M, PageSize

GIB = 1 << 30


def make_asp(n_chunks=8, n_nodes=2, dram=GIB):
    phys = PhysicalMemory([dram] * n_nodes)
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


class TestFaulting:
    def test_unmapped_reads_negative(self):
        asp = make_asp()
        homes = asp.home_nodes(np.array([0, 100]))
        assert np.all(homes == -1)

    def test_fault_in_4k(self):
        asp = make_asp()
        stats = asp.fault_in(np.array([5, 6, 7]), node=1, thp_alloc=False)
        assert stats.faults_4k == 3
        assert stats.faults_2m == 0
        assert np.all(asp.home_nodes(np.array([5, 6, 7])) == 1)
        asp.check_invariants()

    def test_fault_in_thp_backs_whole_chunk(self):
        asp = make_asp()
        stats = asp.fault_in(np.array([5]), node=0, thp_alloc=True)
        assert stats.faults_2m == 1
        homes = asp.home_nodes(np.arange(GRANULES_PER_2M))
        assert np.all(homes == 0)
        asp.check_invariants()

    def test_fault_in_partially_mapped_chunk_falls_back_to_4k(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        stats = asp.fault_in(np.array([6]), node=1, thp_alloc=True)
        assert stats.faults_4k == 1
        assert stats.faults_2m == 0

    def test_fault_in_already_mapped_is_noop(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        stats = asp.fault_in(np.array([5, 5, 5]), node=1, thp_alloc=False)
        assert stats.total == 0
        assert asp.home_nodes(np.array([5]))[0] == 0  # first touch wins

    def test_fault_falls_back_when_node_full(self):
        # Node 0 has a single 2MB page worth of memory.
        phys = PhysicalMemory([PAGE_2M, GIB])
        asp = AddressSpace(4 * GRANULES_PER_2M, phys)
        asp.fault_in(np.arange(GRANULES_PER_2M), node=0, thp_alloc=False)
        stats = asp.fault_in(
            np.arange(GRANULES_PER_2M, GRANULES_PER_2M + 4), node=0, thp_alloc=False
        )
        assert stats.faults_4k == 4
        assert np.all(
            asp.home_nodes(np.arange(GRANULES_PER_2M, GRANULES_PER_2M + 4)) == 1
        )

    def test_empty_fault(self):
        asp = make_asp()
        assert asp.fault_in(np.empty(0, dtype=np.int64), 0, True).total == 0


class TestPremap:
    def test_premap_range_thp(self):
        asp = make_asp()
        stats = asp.premap_range(0, 2 * GRANULES_PER_2M, node=1, thp_alloc=True)
        assert stats.faults_2m == 2
        assert asp.page_counts()[PageSize.SIZE_2M] == 2

    def test_premap_range_4k(self):
        asp = make_asp()
        stats = asp.premap_range(10, 20, node=0, thp_alloc=False)
        assert stats.faults_4k == 20

    def test_premap_range_partial_chunk_under_thp(self):
        asp = make_asp()
        stats = asp.premap_range(0, 100, node=0, thp_alloc=True)
        # Not a whole chunk: mapped 4K even with THP on.
        assert stats.faults_4k == 100
        assert stats.faults_2m == 0

    def test_premap_out_of_range(self):
        asp = make_asp(n_chunks=1)
        with pytest.raises(MappingError):
            asp.premap_range(0, GRANULES_PER_2M + 1, 0, False)

    def test_premap_pattern_4k(self):
        asp = make_asp()
        nodes = np.array([0, 1] * 256, dtype=np.int8)
        asp.premap_pattern_4k(0, nodes)
        homes = asp.home_nodes(np.arange(512))
        assert np.array_equal(homes, nodes)
        asp.check_invariants()

    def test_premap_pattern_4k_overlap_rejected(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(10, dtype=np.int8))
        with pytest.raises(MappingError):
            asp.premap_pattern_4k(5, np.zeros(10, dtype=np.int8))

    def test_premap_pattern_4k_bad_nodes(self):
        asp = make_asp()
        with pytest.raises(MappingError):
            asp.premap_pattern_4k(0, np.array([7], dtype=np.int8))

    def test_premap_pattern_2m(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0, 1, 0], dtype=np.int8))
        assert asp.page_counts()[PageSize.SIZE_2M] == 3
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET + 1) == 1
        asp.check_invariants()

    def test_premap_pattern_2m_overlap_rejected(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        with pytest.raises(MappingError):
            asp.premap_pattern_2m(0, np.array([1], dtype=np.int8))


class TestBackingInfo:
    def test_mixed_backing(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        asp.premap_pattern_4k(GRANULES_PER_2M, np.ones(4, dtype=np.int8))
        g = np.array([0, 5, GRANULES_PER_2M, GRANULES_PER_2M + 3])
        ids, sizes = asp.backing_info(g)
        assert ids[0] == ids[1] == BACKING_ID_2M_OFFSET
        assert ids[2] == GRANULES_PER_2M
        assert sizes[0] == int(PageSize.SIZE_2M)
        assert sizes[2] == int(PageSize.SIZE_4K)

    def test_backing_id_kind(self):
        assert AddressSpace.backing_id_kind(7) is PageSize.SIZE_4K
        assert AddressSpace.backing_id_kind(BACKING_ID_2M_OFFSET) is PageSize.SIZE_2M
        assert AddressSpace.backing_id_kind(BACKING_ID_1G_OFFSET) is PageSize.SIZE_1G

    def test_granules_of_backing(self):
        asp = make_asp()
        g = asp.granules_of_backing(BACKING_ID_2M_OFFSET + 1)
        assert g[0] == GRANULES_PER_2M
        assert len(g) == GRANULES_PER_2M

    def test_backing_is_live(self):
        asp = make_asp()
        assert not asp.backing_is_live(0)
        assert not asp.backing_is_live(BACKING_ID_2M_OFFSET)
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        assert asp.backing_is_live(BACKING_ID_2M_OFFSET)
        asp.split_chunk(0)
        assert not asp.backing_is_live(BACKING_ID_2M_OFFSET)
        assert asp.backing_is_live(0)


class TestSplitCollapse:
    def test_split_preserves_homes(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([1], dtype=np.int8))
        used_before = asp.phys[1].used_bytes
        asp.split_chunk(0)
        homes = asp.home_nodes(np.arange(GRANULES_PER_2M))
        assert np.all(homes == 1)
        assert asp.phys[1].used_bytes == used_before
        asp.check_invariants()

    def test_split_not_huge_rejected(self):
        asp = make_asp()
        with pytest.raises(MappingError):
            asp.split_chunk(0)

    def test_collapse_plurality_node(self):
        asp = make_asp()
        nodes = np.concatenate(
            [np.zeros(200, dtype=np.int8), np.ones(312, dtype=np.int8)]
        )
        asp.premap_pattern_4k(0, nodes)
        assert asp.collapse_chunk(0)
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1
        asp.check_invariants()

    def test_collapse_partial_chunk_refused(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(100, dtype=np.int8))
        assert not asp.collapse_chunk(0)

    def test_collapse_explicit_node(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(512, dtype=np.int8))
        assert asp.collapse_chunk(0, node=1)
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1

    def test_split_collapse_roundtrip_accounting(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        before = asp.phys.total_used_bytes
        asp.split_chunk(0)
        asp.collapse_chunk(0)
        assert asp.phys.total_used_bytes == before
        asp.check_invariants()


class TestMigration:
    def test_migrate_4k(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        moved = asp.migrate_backing(2, 1)
        assert moved == 4096
        assert asp.home_nodes(np.array([2]))[0] == 1

    def test_migrate_4k_same_node_is_noop(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        assert asp.migrate_backing(0, 0) == 0

    def test_migrate_2m(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        moved = asp.migrate_backing(BACKING_ID_2M_OFFSET, 1)
        assert moved == PAGE_2M
        assert asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1
        asp.check_invariants()

    def test_migrate_unmapped_rejected(self):
        asp = make_asp()
        with pytest.raises(MappingError):
            asp.migrate_backing(0, 1)

    def test_migrate_bad_node_rejected(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        with pytest.raises(MappingError):
            asp.migrate_backing(0, 9)

    def test_migrate_full_destination_skipped(self):
        phys = PhysicalMemory([GIB, PAGE_2M])
        asp = AddressSpace(4 * GRANULES_PER_2M, phys)
        asp.premap_pattern_2m(0, np.array([0, 0], dtype=np.int8))
        phys[1].alloc_small(512)  # fill node 1 entirely
        assert asp.migrate_backing(BACKING_ID_2M_OFFSET, 1) == 0

    def test_migrate_granules_bulk(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(8, dtype=np.int8))
        g = np.arange(8)
        dst = np.array([0, 1] * 4)
        moved = asp.migrate_granules(g, dst)
        assert moved == 4 * 4096
        assert np.array_equal(asp.home_nodes(g), dst.astype(np.int8))
        asp.check_invariants()

    def test_migrate_granules_requires_4k(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        with pytest.raises(MappingError):
            asp.migrate_granules(np.array([0]), np.array([1]))


class Test1GPages:
    def make_1g_asp(self):
        phys = PhysicalMemory([4 * GIB, 4 * GIB])
        return AddressSpace(2 * GRANULES_PER_1G, phys)

    def test_map_1g(self):
        asp = self.make_1g_asp()
        stats = asp.map_range_1g(0, GRANULES_PER_1G, node=1)
        assert stats.faults_1g == 1
        assert asp.home_nodes(np.array([0, GRANULES_PER_1G - 1])).tolist() == [1, 1]
        asp.check_invariants()

    def test_map_1g_misaligned_rejected(self):
        asp = self.make_1g_asp()
        with pytest.raises(MappingError):
            asp.map_range_1g(512, GRANULES_PER_1G, 0)

    def test_map_1g_overlap_rejected(self):
        asp = self.make_1g_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        with pytest.raises(MappingError):
            asp.map_range_1g(0, GRANULES_PER_1G, 0)

    def test_split_1g(self):
        asp = self.make_1g_asp()
        asp.map_range_1g(0, GRANULES_PER_1G, node=0)
        asp.split_gchunk(0)
        homes = asp.home_nodes(np.array([0, GRANULES_PER_1G - 1]))
        assert np.all(homes == 0)
        assert asp.page_counts()[PageSize.SIZE_1G] == 0
        asp.check_invariants()

    def test_migrate_1g(self):
        asp = self.make_1g_asp()
        asp.map_range_1g(0, GRANULES_PER_1G, node=0)
        moved = asp.migrate_backing(BACKING_ID_1G_OFFSET, 1)
        assert moved == 1 << 30
        assert asp.node_of_backing(BACKING_ID_1G_OFFSET) == 1


class TestIntrospection:
    def test_mapped_bytes(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        asp.premap_pattern_4k(GRANULES_PER_2M, np.ones(3, dtype=np.int8))
        assert asp.mapped_bytes() == PAGE_2M + 3 * 4096

    def test_bytes_per_node(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0, 1], dtype=np.int8))
        per = asp.bytes_per_node()
        assert per[0] == PAGE_2M
        assert per[1] == PAGE_2M


class TestProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 7), st.integers(0, 1)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_op_sequences_keep_invariants(self, ops):
        """Random premap/split/collapse/migrate sequences stay consistent."""
        asp = make_asp(n_chunks=8, n_nodes=2)
        for op, chunk, node in ops:
            if op == 0:  # premap huge if fully unmapped
                if not asp.huge[chunk] and asp.mapped_count_2m[chunk] == 0:
                    asp.premap_pattern_2m(chunk, np.array([node], dtype=np.int8))
            elif op == 1:  # split if huge
                if asp.huge[chunk]:
                    asp.split_chunk(chunk)
            elif op == 2:  # collapse (may refuse)
                asp.collapse_chunk(chunk)
            else:  # migrate whichever backing exists at chunk start
                g = chunk * GRANULES_PER_2M
                ids, _ = asp.backing_info(np.array([g]))
                if asp.backing_is_live(int(ids[0])):
                    asp.migrate_backing(int(ids[0]), node)
        asp.check_invariants()
        # Physical accounting matches the mapping.
        assert asp.phys.total_used_bytes == asp.mapped_bytes()
