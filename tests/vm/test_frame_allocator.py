"""Tests for the buddy allocator and per-node memory, incl. properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.vm.frame_allocator import BuddyAllocator, NodeMemory, PhysicalMemory
from repro.vm.layout import ORDER_1G, ORDER_2M, PAGE_2M, PAGE_4K

MIB_FRAMES = 256  # 1 MiB worth of 4K frames


class TestBuddyBasics:
    def test_initial_free(self):
        b = BuddyAllocator(1 << 12)
        assert b.free_frames == 1 << 12
        assert b.allocated_frames == 0

    def test_alloc_free_roundtrip(self):
        b = BuddyAllocator(1 << 12)
        start = b.alloc(3)
        assert b.free_frames == (1 << 12) - 8
        b.free(start, 3)
        assert b.free_frames == 1 << 12
        b.check_invariants()

    def test_alignment(self):
        b = BuddyAllocator(1 << 12)
        for order in (0, 3, 9):
            start = b.alloc(order)
            assert start % (1 << order) == 0

    def test_split_and_merge(self):
        b = BuddyAllocator(1 << 10, max_order=10)
        blocks = [b.alloc(0) for _ in range(4)]
        for start in blocks:
            b.free(start, 0)
        b.check_invariants()
        # Everything merged back: one max-order block again.
        assert b.free_blocks(10) == 1

    def test_exhaustion_raises(self):
        b = BuddyAllocator(8, max_order=3)
        b.alloc(3)
        with pytest.raises(AllocationError):
            b.alloc(0)

    def test_double_free_rejected(self):
        b = BuddyAllocator(64, max_order=6)
        start = b.alloc(2)
        b.free(start, 2)
        with pytest.raises(AllocationError):
            b.free(start, 2)

    def test_wrong_order_free_rejected(self):
        b = BuddyAllocator(64, max_order=6)
        start = b.alloc(2)
        with pytest.raises(AllocationError):
            b.free(start, 3)
        b.free(start, 2)  # still freeable correctly

    def test_free_unallocated_rejected(self):
        b = BuddyAllocator(64, max_order=6)
        with pytest.raises(AllocationError):
            b.free(0, 0)

    def test_can_alloc(self):
        b = BuddyAllocator(16, max_order=4)
        assert b.can_alloc(4)
        b.alloc(4)
        assert not b.can_alloc(0)

    def test_largest_free_order(self):
        b = BuddyAllocator(1 << 10, max_order=10)
        assert b.largest_free_order() == 10
        b.alloc(10)
        assert b.largest_free_order() == -1

    def test_irregular_size_seeding(self):
        # 1000 frames = 512 + 256 + 128 + 64 + 32 + 8
        b = BuddyAllocator(1000, max_order=9)
        assert b.free_frames == 1000
        b.check_invariants()

    def test_fragmentation_blocks_large_alloc(self):
        b = BuddyAllocator(1 << 10, max_order=10)
        # Allocate every other order-0 pair position to fragment.
        held = [b.alloc(0) for _ in range(1 << 10)]
        for start in held[::2]:
            b.free(start, 0)
        assert b.free_frames == 512
        assert not b.can_alloc(9)

    def test_invalid_order(self):
        b = BuddyAllocator(64, max_order=6)
        with pytest.raises(ConfigurationError):
            b.alloc(7)

    def test_invalid_total(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(0)


class TestBuddyProperties:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 6)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_ops_keep_invariants(self, ops):
        b = BuddyAllocator(1 << 10, max_order=10)
        live = []
        for op, order in ops:
            if op == "alloc":
                try:
                    start = b.alloc(order)
                except AllocationError:
                    continue
                live.append((start, order))
            elif live:
                start, o = live.pop()
                b.free(start, o)
        b.check_invariants()
        allocated = sum(1 << o for _, o in live)
        assert b.allocated_frames == allocated

    @given(orders=st.lists(st.integers(0, 8), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_alloc_all_then_free_all_restores(self, orders):
        b = BuddyAllocator(1 << 12, max_order=12)
        live = []
        for order in orders:
            try:
                live.append((b.alloc(order), order))
            except AllocationError:
                pass
        for start, order in live:
            b.free(start, order)
        b.check_invariants()
        assert b.free_frames == 1 << 12
        assert b.free_blocks(12) == 1

    @given(orders=st.lists(st.integers(0, 6), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_no_overlapping_allocations(self, orders):
        b = BuddyAllocator(1 << 10, max_order=10)
        spans = []
        for order in orders:
            try:
                start = b.alloc(order)
            except AllocationError:
                continue
            span = set(range(start, start + (1 << order)))
            for other in spans:
                assert not (span & other)
            spans.append(span)


class TestNodeMemory:
    def test_small_pool_accounting(self):
        node = NodeMemory(0, 64 * PAGE_2M)
        node.alloc_small(100)
        assert node.used_bytes == 100 * PAGE_4K
        node.free_small(100)
        assert node.used_bytes == 0

    def test_pool_carves_blocks(self):
        node = NodeMemory(0, 64 * PAGE_2M)
        node.alloc_small(1)
        stats = node.pool_stats()
        assert stats.reserved_blocks == 1
        assert stats.free_frames_in_pool == 511

    def test_pool_returns_blocks(self):
        node = NodeMemory(0, 64 * PAGE_2M)
        node.alloc_small(512)
        node.free_small(512)
        assert node.pool_stats().reserved_blocks == 0
        assert node.free_bytes == 64 * PAGE_2M

    def test_huge_roundtrip(self):
        node = NodeMemory(0, 64 * PAGE_2M)
        start = node.alloc_huge()
        assert node.used_bytes == PAGE_2M
        node.free_huge(start)
        assert node.used_bytes == 0

    def test_exhaustion(self):
        node = NodeMemory(0, 2 * PAGE_2M)
        node.alloc_small(1024)
        with pytest.raises(AllocationError):
            node.alloc_small(1)

    def test_fragmentation_blocks_huge(self):
        node = NodeMemory(0, 4 * PAGE_2M)
        node.inject_fragmentation(4 * 512 - 511, order=0)
        assert not node.can_alloc_huge()
        node.release_fragmentation()
        assert node.can_alloc_huge()

    def test_giga_requires_gigabyte(self):
        node = NodeMemory(0, 2 * (1 << 30))
        start = node.alloc_giga()
        assert node.used_bytes == 1 << 30
        node.free_giga(start)

    def test_negative_counts_rejected(self):
        node = NodeMemory(0, PAGE_2M)
        with pytest.raises(ConfigurationError):
            node.alloc_small(-1)
        with pytest.raises(ConfigurationError):
            node.free_small(-1)

    @given(
        ops=st.lists(st.integers(min_value=1, max_value=700), min_size=1, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_pool_conservation_property(self, ops):
        node = NodeMemory(0, 256 * PAGE_2M)
        held = 0
        for n in ops:
            node.alloc_small(n)
            held += n
        assert node.used_bytes == held * PAGE_4K
        node.free_small(held)
        assert node.used_bytes == 0


class TestPhysicalMemory:
    def test_for_topology(self, tiny_topo):
        phys = PhysicalMemory.for_topology(tiny_topo)
        assert len(phys) == 2
        assert phys.total_free_bytes == tiny_topo.total_dram_bytes

    def test_node_with_most_free(self):
        phys = PhysicalMemory([4 * PAGE_2M, 8 * PAGE_2M])
        assert phys.node_with_most_free() == 1
        assert phys.node_with_most_free(exclude=1) == 0

    def test_node_with_most_free_all_excluded(self):
        phys = PhysicalMemory([PAGE_2M])
        with pytest.raises(AllocationError):
            phys.node_with_most_free(exclude=0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicalMemory([])
