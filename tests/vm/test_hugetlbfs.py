"""Tests for the 1GB-page (hugetlbfs-style) backing helpers."""

import numpy as np
import pytest

from repro.errors import AllocationError, MappingError
from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.hugetlbfs import (
    list_1g_pages,
    reserve_1g_region,
    round_up_granules_1g,
)
from repro.vm.layout import GRANULES_PER_1G, PageSize

GIB = 1 << 30


def make_asp(n_gchunks=4, dram_per_node=4 * GIB):
    phys = PhysicalMemory([dram_per_node, dram_per_node])
    return AddressSpace(n_gchunks * GRANULES_PER_1G, phys)


class TestReserve:
    def test_single_node_reservation(self):
        asp = make_asp()
        stats = reserve_1g_region(asp, 0, 2 * GRANULES_PER_1G, preferred_node=0)
        assert stats.faults_1g == 2
        assert asp.page_counts()[PageSize.SIZE_1G] == 2
        # All on the preferred node: the paper's hot-node pathology.
        assert asp.node_of_backing(list_1g_pages(asp)[0]) == 0

    def test_spread_round_robin(self):
        asp = make_asp()
        reserve_1g_region(asp, 0, 2 * GRANULES_PER_1G, preferred_node=0, spread=True)
        nodes = {asp.node_of_backing(p) for p in list_1g_pages(asp)}
        assert nodes == {0, 1}

    def test_misaligned_rejected(self):
        asp = make_asp()
        with pytest.raises(MappingError):
            reserve_1g_region(asp, 512, GRANULES_PER_1G, 0)

    def test_pool_exhaustion_raises(self):
        asp = make_asp(n_gchunks=4, dram_per_node=GIB)
        with pytest.raises(AllocationError):
            reserve_1g_region(asp, 0, 3 * GRANULES_PER_1G, preferred_node=0)


class TestHelpers:
    def test_round_up(self):
        assert round_up_granules_1g(0) == 0
        assert round_up_granules_1g(1) == GRANULES_PER_1G
        assert round_up_granules_1g(GRANULES_PER_1G) == GRANULES_PER_1G

    def test_round_up_negative(self):
        with pytest.raises(MappingError):
            round_up_granules_1g(-1)

    def test_list_pages_empty(self):
        assert list_1g_pages(make_asp()) == []
