"""Tests for page-size constants and granule arithmetic."""

import numpy as np
import pytest

from repro.vm.layout import (
    CHUNKS_2M_PER_1G,
    GRANULES_PER_1G,
    GRANULES_PER_2M,
    ORDER_1G,
    ORDER_2M,
    ORDER_4K,
    PAGE_1G,
    PAGE_2M,
    PAGE_4K,
    PageSize,
    chunk_1g_of,
    chunk_2m_of,
    chunks_1g_of_granules,
    chunks_2m_of_granules,
    granules_of_bytes,
)


class TestConstants:
    def test_granules_per_page(self):
        assert GRANULES_PER_2M == 512
        assert GRANULES_PER_1G == 512 * 512
        assert CHUNKS_2M_PER_1G == 512

    def test_orders(self):
        assert 2**ORDER_4K * PAGE_4K == PAGE_4K
        assert 2**ORDER_2M * PAGE_4K == PAGE_2M
        assert 2**ORDER_1G * PAGE_4K == PAGE_1G


class TestPageSize:
    def test_granules(self):
        assert PageSize.SIZE_4K.granules == 1
        assert PageSize.SIZE_2M.granules == 512
        assert PageSize.SIZE_1G.granules == 262144

    def test_order(self):
        assert PageSize.SIZE_4K.order == 0
        assert PageSize.SIZE_2M.order == 9
        assert PageSize.SIZE_1G.order == 18


class TestArithmetic:
    def test_granules_of_bytes_rounds_up(self):
        assert granules_of_bytes(1) == 1
        assert granules_of_bytes(4096) == 1
        assert granules_of_bytes(4097) == 2

    def test_granules_of_bytes_zero(self):
        assert granules_of_bytes(0) == 0

    def test_granules_of_bytes_negative(self):
        with pytest.raises(ValueError):
            granules_of_bytes(-1)

    def test_chunk_counts_round_up(self):
        assert chunks_2m_of_granules(1) == 1
        assert chunks_2m_of_granules(512) == 1
        assert chunks_2m_of_granules(513) == 2
        assert chunks_1g_of_granules(262144) == 1
        assert chunks_1g_of_granules(262145) == 2

    def test_chunk_counts_negative(self):
        with pytest.raises(ValueError):
            chunks_2m_of_granules(-1)
        with pytest.raises(ValueError):
            chunks_1g_of_granules(-1)

    def test_chunk_of_vectorised(self):
        g = np.array([0, 511, 512, 262143, 262144])
        assert list(chunk_2m_of(g)) == [0, 0, 1, 511, 512]
        assert list(chunk_1g_of(g)) == [0, 0, 0, 0, 1]
