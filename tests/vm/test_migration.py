"""Tests for the migration / split / collapse cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.vm.layout import PAGE_2M, PAGE_4K
from repro.vm.migration import MigrationCostModel


class TestValidation:
    def test_defaults_ok(self):
        MigrationCostModel()

    def test_bad_copy_rate(self):
        with pytest.raises(ConfigurationError):
            MigrationCostModel(copy_bytes_per_sec=0)

    def test_negative_fixed_cost(self):
        with pytest.raises(ConfigurationError):
            MigrationCostModel(split_cost_s=-1)


class TestMigrationTime:
    def test_scales_with_bytes(self):
        model = MigrationCostModel(
            copy_bytes_per_sec=1e9, fixed_cost_per_migration_s=0
        )
        assert model.migration_time_s(1e9, 1) == pytest.approx(1.0)

    def test_fixed_cost_per_page(self):
        model = MigrationCostModel(fixed_cost_per_migration_s=1e-5)
        base = model.migration_time_s(0, 100)
        assert base == pytest.approx(1e-3)

    def test_2m_migration_costlier_than_4k(self):
        model = MigrationCostModel()
        assert model.migration_time_for_pages_s(0, 1) > model.migration_time_for_pages_s(1, 0)

    def test_2m_cheaper_than_512_4k(self):
        # Moving one 2MB page beats moving its 512 constituents
        # (fewer fixed costs), which is why Carrefour-2M prefers it.
        model = MigrationCostModel()
        assert model.migration_time_for_pages_s(0, 1) < model.migration_time_for_pages_s(512, 0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            MigrationCostModel().migration_time_s(-1, 0)


class TestSplitCollapse:
    def test_split_no_copy(self):
        model = MigrationCostModel()
        # Splits only touch page tables: far cheaper than a 2MB copy.
        assert model.split_time_s(1) < model.migration_time_s(PAGE_2M, 1)

    def test_collapse_includes_copy(self):
        model = MigrationCostModel()
        assert model.collapse_time_s(1) > PAGE_2M / model.copy_bytes_per_sec

    def test_ptl_contention(self):
        model = MigrationCostModel(ptl_contention_per_thread=0.1)
        assert model.split_time_s(10, n_threads=11) == pytest.approx(
            model.split_time_s(10, n_threads=1) * 2.0
        )

    def test_ptl_capped(self):
        model = MigrationCostModel(
            ptl_contention_per_thread=1.0, max_ptl_multiplier=2.0
        )
        assert model.split_time_s(1, n_threads=100) == pytest.approx(
            model.split_cost_s * 2.0
        )

    def test_zero_ops(self):
        model = MigrationCostModel()
        assert model.split_time_s(0) == 0.0
        assert model.collapse_time_s(0) == 0.0

    def test_negative_counts_rejected(self):
        model = MigrationCostModel()
        with pytest.raises(ConfigurationError):
            model.split_time_s(-1)
        with pytest.raises(ConfigurationError):
            model.collapse_time_s(-1)
