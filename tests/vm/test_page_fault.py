"""Tests for the page-fault cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.vm.page_fault import PageFaultModel


class TestValidation:
    def test_defaults_ok(self):
        PageFaultModel()

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            PageFaultModel(base_cost_4k_s=0)

    def test_negative_contention_rejected(self):
        with pytest.raises(ConfigurationError):
            PageFaultModel(contention_per_thread=-0.1)

    def test_multiplier_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            PageFaultModel(max_contention_multiplier=0.5)


class TestContention:
    def test_single_thread_no_contention(self):
        model = PageFaultModel()
        assert model.contention_multiplier(1) == 1.0
        assert model.contention_multiplier(0) == 1.0

    def test_multiplier_grows_with_threads(self):
        model = PageFaultModel(contention_per_thread=0.5)
        assert model.contention_multiplier(3) == pytest.approx(2.0)

    def test_multiplier_capped(self):
        model = PageFaultModel(
            contention_per_thread=1.0, max_contention_multiplier=4.0
        )
        assert model.contention_multiplier(100) == 4.0

    def test_negative_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            PageFaultModel().contention_multiplier(-1)


class TestHandlerTime:
    def test_2m_fault_cheaper_per_byte(self):
        model = PageFaultModel()
        # Same memory: 512 4K faults vs one 2M fault.
        t_4k = model.handler_time_s(512, 0, 0, 1)
        t_2m = model.handler_time_s(0, 1, 0, 1)
        assert t_2m < t_4k

    def test_2m_fault_costlier_each(self):
        model = PageFaultModel()
        assert model.base_cost_2m_s > model.base_cost_4k_s

    def test_zero_faults(self):
        assert PageFaultModel().handler_time_s(0, 0, 0, 10) == 0.0

    def test_negative_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            PageFaultModel().handler_time_s(-1, 0, 0, 1)

    def test_contention_scales_total(self):
        model = PageFaultModel(contention_per_thread=0.5)
        alone = model.handler_time_s(100, 0, 0, 1)
        crowded = model.handler_time_s(100, 0, 0, 5)
        assert crowded == pytest.approx(alone * 3.0)

    @given(
        f4=st.integers(0, 10_000),
        f2=st.integers(0, 100),
        threads=st.integers(0, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_time_nonnegative_and_monotone(self, f4, f2, threads):
        model = PageFaultModel()
        t = model.handler_time_s(f4, f2, 0, threads)
        assert t >= 0.0
        assert model.handler_time_s(f4 + 1, f2, 0, threads) >= t
