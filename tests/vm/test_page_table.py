"""Tests for the page-table footprint model."""

import numpy as np
import pytest

from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, PAGE_4K, PageSize
from repro.vm.page_table import ENTRIES_PER_TABLE, PageTableModel

GIB = 1 << 30


def make_asp(n_chunks=8):
    phys = PhysicalMemory([GIB, GIB])
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


class TestFootprint:
    def test_empty_space(self):
        fp = PageTableModel().footprint(make_asp())
        assert fp.pte_tables == 0
        assert fp.total_bytes == 0

    def test_one_4k_mapping_needs_full_chain(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        fp = PageTableModel().footprint(asp)
        assert fp.pte_tables == 1
        assert fp.pmd_tables == 1
        assert fp.pud_tables == 1
        assert fp.pgd_tables == 1
        assert fp.total_tables == 4

    def test_huge_pages_skip_pte_level(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0, 0, 0], dtype=np.int8))
        fp = PageTableModel().footprint(asp)
        assert fp.pte_tables == 0
        assert fp.pmd_tables == 1

    def test_4k_needs_one_pte_table_per_chunk(self):
        asp = make_asp(n_chunks=4)
        for chunk in range(4):
            asp.premap_pattern_4k(
                chunk * GRANULES_PER_2M, np.zeros(1, dtype=np.int8)
            )
        fp = PageTableModel().footprint(asp)
        assert fp.pte_tables == 4

    def test_split_grows_tables(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        model = PageTableModel()
        before = model.footprint(asp).total_tables
        asp.split_chunk(0)
        after = model.footprint(asp).total_tables
        assert after == before + 1


class TestClosedForm:
    def test_zero_bytes(self):
        assert PageTableModel().bytes_for_fully_mapped(0, PageSize.SIZE_4K) == 0

    def test_4k_tables_dominate(self):
        model = PageTableModel()
        four_k = model.bytes_for_fully_mapped(GIB, PageSize.SIZE_4K)
        two_m = model.bytes_for_fully_mapped(GIB, PageSize.SIZE_2M)
        # 1GB at 4K needs 512 PTE tables (2MB) plus upper levels.
        assert four_k > 512 * PAGE_4K
        assert two_m < four_k / 100

    def test_oracle_motivation_scenario(self):
        # The paper's motivation: ~7GB of page tables for a large DBMS
        # with 500 connections each mapping a shared buffer cache.
        model = PageTableModel()
        out = model.footprint_per_process(
            mapped_bytes=7 * GIB, page_size=PageSize.SIZE_4K, n_processes=500
        )
        assert out["total_bytes"] > 6 * GIB
        out_2m = model.footprint_per_process(
            mapped_bytes=7 * GIB, page_size=PageSize.SIZE_2M, n_processes=500
        )
        assert out_2m["total_bytes"] < out["total_bytes"] / 100

    def test_entries_per_table(self):
        assert ENTRIES_PER_TABLE == 512
