"""Reclaim, teardown, and fragmenting-pressure pins.

These back the multi-tenant machinery: ``reclaim_granules`` is the
``ReclaimPages`` decision's mechanism, ``release_all`` is tenant exit,
and ``NodeMemory.pin_fragmented`` is how scenarios model a loaded
host's fragmented occupancy.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MappingError
from repro.vm.address_space import AddressSpace, BACKING_ID_2M_OFFSET
from repro.vm.frame_allocator import NodeMemory, PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, ORDER_2M, PAGE_2M, PAGE_4K

GIB = 1 << 30


def make_asp(n_chunks=8, n_nodes=2, dram=GIB):
    phys = PhysicalMemory([dram] * n_nodes)
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


class TestReclaimGranules:
    def test_reclaims_mapped_4k(self):
        asp = make_asp()
        asp.fault_in(np.arange(8), node=0, thp_alloc=False)
        used_before = asp.phys.total_used_bytes
        freed = asp.reclaim_granules(np.arange(4))
        assert freed == 4 * PAGE_4K
        assert asp.reclaimed_bytes == freed
        assert asp.phys.total_used_bytes == used_before - freed
        assert np.all(asp.home_nodes(np.arange(4)) == -1)
        assert np.all(asp.home_nodes(np.arange(4, 8)) == 0)
        asp.check_invariants()

    def test_skips_unmapped_and_huge_backed(self):
        asp = make_asp()
        asp.fault_in(np.array([0]), node=0, thp_alloc=True)  # chunk 0 huge
        asp.fault_in(np.array([GRANULES_PER_2M]), node=0, thp_alloc=False)
        freed = asp.reclaim_granules(
            np.array([0, 1, GRANULES_PER_2M, GRANULES_PER_2M + 1])
        )
        # Only the one plain 4KB mapping is eligible.
        assert freed == PAGE_4K
        assert asp.home_nodes(np.array([0]))[0] == 0
        asp.check_invariants()

    def test_skips_replicated(self):
        asp = make_asp()
        asp.fault_in(np.array([3]), node=0, thp_alloc=False)
        asp.replicate_backing(3)
        assert asp.reclaim_granules(np.array([3])) == 0
        asp.check_invariants()

    def test_reclaimed_granule_faults_back_in(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        asp.reclaim_granules(np.array([5]))
        stats = asp.fault_in(np.array([5]), node=1, thp_alloc=False)
        assert stats.faults_4k == 1
        assert asp.home_nodes(np.array([5]))[0] == 1
        asp.check_invariants()

    def test_out_of_range_rejected(self):
        asp = make_asp()
        with pytest.raises(MappingError):
            asp.reclaim_granules(np.array([-1]))
        with pytest.raises(MappingError):
            asp.reclaim_granules(np.array([asp.n_granules]))

    def test_counter_accumulates(self):
        asp = make_asp()
        asp.fault_in(np.arange(6), node=0, thp_alloc=False)
        asp.reclaim_granules(np.arange(2))
        asp.reclaim_granules(np.arange(2, 4))
        assert asp.reclaimed_bytes == 4 * PAGE_4K


class TestReleaseAll:
    def test_returns_every_frame(self):
        asp = make_asp()
        asp.fault_in(np.array([0]), node=0, thp_alloc=True)
        asp.fault_in(
            np.arange(GRANULES_PER_2M, GRANULES_PER_2M + 16),
            node=1,
            thp_alloc=False,
        )
        mapped = asp.mapped_bytes()
        assert mapped == PAGE_2M + 16 * PAGE_4K
        released = asp.release_all()
        assert released == mapped
        assert asp.mapped_bytes() == 0
        assert asp.phys.total_used_bytes == 0
        assert asp.reclaimed_bytes == released
        asp.check_invariants()

    def test_collapses_replicas_first(self):
        asp = make_asp()
        asp.fault_in(np.array([0]), node=0, thp_alloc=True)
        asp.replicate_backing(BACKING_ID_2M_OFFSET)
        assert asp.replica_bytes > 0
        asp.release_all()
        assert asp.replica_bytes == 0
        assert asp.phys.total_used_bytes == 0

    def test_released_space_is_reusable(self):
        asp = make_asp()
        asp.fault_in(np.arange(4), node=0, thp_alloc=False)
        asp.release_all()
        stats = asp.fault_in(np.array([0]), node=0, thp_alloc=True)
        assert stats.faults_2m == 1
        asp.check_invariants()


class TestPinFragmented:
    def test_pins_and_accounts_target(self):
        node = NodeMemory(0, GIB)
        pinned = node.pin_fragmented(int(GIB * 0.7))
        assert pinned == node.test_pinned_bytes
        assert pinned == pytest.approx(0.7 * GIB, rel=0.01)
        node.buddy.check_invariants()

    def test_high_pressure_destroys_huge_contiguity(self):
        node = NodeMemory(0, GIB)
        assert node.can_alloc_huge()
        node.pin_fragmented(int(GIB * 0.7))
        # 30% of the node is still free, but only in sub-2MB shards.
        assert node.free_bytes > 0
        assert not node.can_alloc_huge()

    def test_low_pressure_fragments_proportionally(self):
        node = NodeMemory(0, GIB)
        blocks_before = GIB // PAGE_2M
        node.pin_fragmented(int(GIB * 0.3))
        # Pinning f of memory breaks ~2f of the 2MB blocks; the rest
        # must still serve huge allocations.
        assert node.can_alloc_huge()
        intact = sum(
            node.buddy.free_blocks(order) << (order - ORDER_2M)
            for order in range(ORDER_2M, node.buddy.max_order + 1)
        )
        assert intact == pytest.approx(0.4 * blocks_before, rel=0.05)

    def test_small_allocations_still_succeed(self):
        node = NodeMemory(0, GIB)
        node.pin_fragmented(int(GIB * 0.7))
        node.alloc_small(1024)
        assert node.used_bytes >= node.test_pinned_bytes + 1024 * PAGE_4K
        node.buddy.check_invariants()

    def test_release_fragmentation_undoes_pins(self):
        node = NodeMemory(0, GIB)
        node.pin_fragmented(int(GIB * 0.7))
        node.release_fragmentation()
        assert node.test_pinned_bytes == 0
        assert node.used_bytes == 0
        assert node.can_alloc_huge()
        node.buddy.check_invariants()

    def test_negative_target_rejected(self):
        node = NodeMemory(0, GIB)
        with pytest.raises(ConfigurationError):
            node.pin_fragmented(-1)

    def test_zero_target_is_noop(self):
        node = NodeMemory(0, GIB)
        assert node.pin_fragmented(0) == 0
        assert node.test_pinned_bytes == 0
