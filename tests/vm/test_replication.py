"""Tests for page replication in the address space."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.vm.address_space import (
    AddressSpace,
    BACKING_ID_1G_OFFSET,
    BACKING_ID_2M_OFFSET,
)
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, PAGE_2M, PAGE_4K

GIB = 1 << 30


def make_asp(n_chunks=4, n_nodes=2, dram=GIB):
    phys = PhysicalMemory([dram] * n_nodes)
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


class TestReplicate4K:
    def test_replicate_and_read_local(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(4, dtype=np.int8))
        copied = asp.replicate_backing(2)
        assert copied == PAGE_4K  # one extra copy on the other node
        g = np.array([2])
        assert asp.home_nodes_for(g, 0)[0] == 0
        assert asp.home_nodes_for(g, 1)[0] == 1
        # Non-replicated neighbours still resolve to their home.
        assert asp.home_nodes_for(np.array([3]), 1)[0] == 0
        asp.check_invariants()

    def test_double_replicate_is_noop(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        assert asp.replicate_backing(0) > 0
        assert asp.replicate_backing(0) == 0

    def test_unreplicate_frees_copies(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        used_before = asp.phys.total_used_bytes
        asp.replicate_backing(0)
        assert asp.phys.total_used_bytes == used_before + PAGE_4K
        freed = asp.unreplicate_backing(0)
        assert freed == PAGE_4K
        assert asp.phys.total_used_bytes == used_before
        asp.check_invariants()

    def test_unreplicate_nonreplicated_is_noop(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        assert asp.unreplicate_backing(0) == 0

    def test_replicate_unmapped_raises(self):
        asp = make_asp()
        with pytest.raises(MappingError):
            asp.replicate_backing(0)

    def test_migration_skips_replicated(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(1, dtype=np.int8))
        asp.replicate_backing(0)
        assert asp.migrate_backing(0, 1) == 0

    def test_bulk_migration_skips_replicated(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(2, dtype=np.int8))
        asp.replicate_backing(0)
        moved = asp.migrate_granules(np.array([0, 1]), np.array([1, 1]))
        assert moved == PAGE_4K  # only granule 1 moved
        asp.check_invariants()

    def test_collapse_chunk_refuses_replicated_members(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(512, dtype=np.int8))
        asp.replicate_backing(5)
        assert not asp.collapse_chunk(0)


class TestReplicate2M:
    def test_replicate_and_read_local(self):
        asp = make_asp(n_nodes=4)
        asp.premap_pattern_2m(0, np.array([2], dtype=np.int8))
        copied = asp.replicate_backing(BACKING_ID_2M_OFFSET)
        assert copied == 3 * PAGE_2M
        g = np.arange(0, GRANULES_PER_2M, 37)
        for node in range(4):
            assert np.all(asp.home_nodes_for(g, node) == node)
        asp.check_invariants()

    def test_replication_mask(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0, 1], dtype=np.int8))
        asp.replicate_backing(BACKING_ID_2M_OFFSET)
        mask = asp.replication_mask(np.array([0, GRANULES_PER_2M]))
        assert mask.tolist() == [True, False]

    def test_split_collapses_replicas_first(self):
        asp = make_asp()
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        asp.replicate_backing(BACKING_ID_2M_OFFSET)
        asp.split_chunk(0)
        assert asp.replica_bytes == 0
        asp.check_invariants()

    def test_replication_fails_when_node_full(self):
        phys = PhysicalMemory([GIB, 2 * PAGE_2M])
        asp = AddressSpace(4 * GRANULES_PER_2M, phys)
        asp.premap_pattern_2m(0, np.array([0], dtype=np.int8))
        phys[1].alloc_small(1024)  # exhaust node 1
        assert asp.replicate_backing(BACKING_ID_2M_OFFSET) == 0
        asp.check_invariants()

    def test_1g_replication_unsupported(self):
        from repro.vm.layout import GRANULES_PER_1G

        phys = PhysicalMemory([4 * GIB, 4 * GIB])
        asp = AddressSpace(GRANULES_PER_1G, phys)
        asp.map_range_1g(0, GRANULES_PER_1G, node=0)
        assert asp.replicate_backing(BACKING_ID_1G_OFFSET) == 0
