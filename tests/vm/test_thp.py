"""Tests for THP state and the khugepaged promotion scanner."""

import numpy as np

from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M, PageSize
from repro.vm.thp import ThpState, khugepaged_scan

GIB = 1 << 30


def make_asp(n_chunks=8):
    phys = PhysicalMemory([GIB, GIB])
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


class TestThpState:
    def test_defaults_enabled(self):
        state = ThpState()
        assert state.alloc_enabled
        assert state.promotion_enabled

    def test_toggles(self):
        state = ThpState()
        state.disable_alloc()
        state.disable_promotion()
        assert not state.alloc_enabled
        assert not state.promotion_enabled
        state.enable_alloc()
        state.enable_promotion()
        assert state.alloc_enabled
        assert state.promotion_enabled


class TestKhugepaged:
    def test_collapses_fully_mapped_chunks(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(512, dtype=np.int8))
        state = ThpState(scan_batch=1024)
        collapsed = khugepaged_scan(state, asp)
        assert collapsed == 1
        assert asp.page_counts()[PageSize.SIZE_2M] == 1

    def test_skips_partial_chunks(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(100, dtype=np.int8))
        state = ThpState(scan_batch=1024)
        assert khugepaged_scan(state, asp) == 0

    def test_disabled_promotion_is_noop(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(512, dtype=np.int8))
        state = ThpState(promotion_enabled=False)
        assert khugepaged_scan(state, asp) == 0
        assert asp.page_counts()[PageSize.SIZE_2M] == 0

    def test_scan_cursor_round_robin(self):
        asp = make_asp(n_chunks=8)
        for chunk in range(8):
            asp.premap_pattern_4k(
                chunk * GRANULES_PER_2M, np.zeros(512, dtype=np.int8)
            )
        state = ThpState(scan_batch=2)
        total = 0
        for _ in range(4):
            total += khugepaged_scan(state, asp)
        assert total == 8  # batches cover the whole space round-robin

    def test_max_collapses_cap(self):
        asp = make_asp()
        for chunk in range(4):
            asp.premap_pattern_4k(
                chunk * GRANULES_PER_2M, np.zeros(512, dtype=np.int8)
            )
        state = ThpState(scan_batch=4096)
        assert khugepaged_scan(state, asp, max_collapses=2) == 2

    def test_collapse_targets_plurality_node(self):
        asp = make_asp()
        nodes = np.concatenate(
            [np.zeros(100, dtype=np.int8), np.ones(412, dtype=np.int8)]
        )
        asp.premap_pattern_4k(0, nodes)
        state = ThpState(scan_batch=1024)
        khugepaged_scan(state, asp)
        from repro.vm.address_space import BACKING_ID_2M_OFFSET

        assert asp.node_of_backing(BACKING_ID_2M_OFFSET) == 1
