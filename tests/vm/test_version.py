"""Tests for the address-space mutation version counter and home-map cache.

The engine's version-keyed caches (backing fractions, per-thread TLB
results, the resolved home map) are only sound if *every* mutating
operation bumps :attr:`AddressSpace.version` and no read ever does.
"""

import numpy as np
import pytest

from repro.vm.address_space import AddressSpace, BACKING_ID_2M_OFFSET
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_1G, GRANULES_PER_2M

GIB = 1 << 30


def make_asp(n_chunks=8, n_nodes=2, dram=GIB):
    phys = PhysicalMemory([dram] * n_nodes)
    return AddressSpace(n_chunks * GRANULES_PER_2M, phys)


def make_asp_1g(n_nodes=2):
    phys = PhysicalMemory([2 * GIB] * n_nodes)
    return AddressSpace(GRANULES_PER_1G, phys)


class TestVersionBumps:
    def test_starts_at_zero(self):
        assert make_asp().version == 0

    def test_fault_in_bumps(self):
        asp = make_asp()
        v = asp.version
        asp.fault_in(np.array([5, 6]), node=0, thp_alloc=False)
        assert asp.version > v

    def test_fault_in_thp_bumps(self):
        asp = make_asp()
        v = asp.version
        asp.fault_in(np.array([5]), node=0, thp_alloc=True)
        assert asp.version > v

    def test_noop_fault_does_not_bump(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        v = asp.version
        asp.fault_in(np.array([5]), node=1, thp_alloc=False)
        assert asp.version == v

    def test_premap_range_bumps(self):
        asp = make_asp()
        v = asp.version
        asp.premap_range(0, GRANULES_PER_2M, node=0, thp_alloc=True)
        assert asp.version > v

    def test_premap_pattern_4k_bumps(self):
        asp = make_asp()
        v = asp.version
        asp.premap_pattern_4k(0, np.array([0, 1, 0, 1]))
        assert asp.version > v

    def test_premap_pattern_2m_bumps(self):
        asp = make_asp()
        v = asp.version
        asp.premap_pattern_2m(0, np.array([0, 1]))
        assert asp.version > v

    def test_map_range_1g_bumps(self):
        asp = make_asp_1g()
        v = asp.version
        asp.map_range_1g(0, GRANULES_PER_1G, node=0)
        assert asp.version > v

    def test_split_chunk_bumps(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=True)
        v = asp.version
        asp.split_chunk(0)
        assert asp.version > v

    def test_split_gchunk_bumps(self):
        asp = make_asp_1g()
        asp.map_range_1g(0, GRANULES_PER_1G, node=0)
        v = asp.version
        asp.split_gchunk(0)
        assert asp.version > v

    def test_collapse_chunk_bumps(self):
        asp = make_asp()
        asp.premap_pattern_4k(0, np.zeros(GRANULES_PER_2M, dtype=np.int8))
        v = asp.version
        assert asp.collapse_chunk(0)
        assert asp.version > v

    def test_failed_collapse_does_not_bump(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        v = asp.version
        assert not asp.collapse_chunk(0)  # chunk not fully mapped
        assert asp.version == v

    def test_migrate_backing_4k_bumps(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        v = asp.version
        assert asp.migrate_backing(5, 1) > 0
        assert asp.version > v

    def test_migrate_backing_2m_bumps(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=True)
        v = asp.version
        assert asp.migrate_backing(BACKING_ID_2M_OFFSET + 0, 1) > 0
        assert asp.version > v

    def test_migrate_to_same_node_does_not_bump(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        v = asp.version
        assert asp.migrate_backing(5, 0) == 0
        assert asp.version == v

    def test_migrate_granules_bumps(self):
        asp = make_asp()
        asp.fault_in(np.array([5, 6]), node=0, thp_alloc=False)
        v = asp.version
        assert asp.migrate_granules(np.array([5, 6]), np.array([1, 1])) > 0
        assert asp.version > v

    def test_migrate_granules_noop_does_not_bump(self):
        asp = make_asp()
        asp.fault_in(np.array([5, 6]), node=0, thp_alloc=False)
        v = asp.version
        assert asp.migrate_granules(np.array([5, 6]), np.array([0, 0])) == 0
        assert asp.version == v

    def test_replicate_and_unreplicate_bump(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        v = asp.version
        assert asp.replicate_backing(5) > 0
        assert asp.version > v
        v = asp.version
        assert asp.unreplicate_backing(5) > 0
        assert asp.version > v

    def test_unreplicate_noop_does_not_bump(self):
        asp = make_asp()
        asp.fault_in(np.array([5]), node=0, thp_alloc=False)
        v = asp.version
        assert asp.unreplicate_backing(5) == 0
        assert asp.version == v

    def test_reads_do_not_bump(self):
        asp = make_asp()
        asp.fault_in(np.array([5, 6]), node=0, thp_alloc=True)
        v = asp.version
        asp.home_nodes(np.array([5, 6]))
        asp.home_nodes_for(np.array([5, 6]), 1)
        asp.backing_info(np.array([5, 6]))
        asp.replication_mask(np.array([5, 6]))
        asp.bytes_per_node()
        asp.page_counts()
        asp.mapped_bytes()
        assert asp.version == v


class TestResolvedHomeMap:
    """The lazy resolved map must be bit-identical to the slow path."""

    @staticmethod
    def _mixed_asp():
        phys = PhysicalMemory([4 * GIB] * 2)
        asp = AddressSpace(2 * GRANULES_PER_1G, phys)
        asp.map_range_1g(GRANULES_PER_1G, GRANULES_PER_1G, node=1)
        asp.premap_pattern_2m(0, np.array([0, 1, 0]))
        asp.premap_pattern_4k(
            3 * GRANULES_PER_2M, np.tile([0, 1], GRANULES_PER_2M // 2)
        )
        return asp

    def test_second_translation_matches_first(self):
        asp = self._mixed_asp()
        g = np.arange(0, 2 * GRANULES_PER_1G, 7, dtype=np.int64)
        slow = asp.home_nodes(g)  # first sighting: slow path
        fast = asp.home_nodes(g)  # second sighting: resolved map
        assert fast.dtype == slow.dtype
        assert np.array_equal(slow, fast)

    def test_unmapped_stays_negative(self):
        asp = self._mixed_asp()
        hole = np.array([4 * GRANULES_PER_2M + 3], dtype=np.int64)
        assert asp.home_nodes(hole)[0] == -1
        assert asp.home_nodes(hole)[0] == -1

    def test_invalidated_by_mutation(self):
        asp = self._mixed_asp()
        g = np.array([3 * GRANULES_PER_2M], dtype=np.int64)
        asp.home_nodes(g)
        asp.home_nodes(g)  # resolved map now built
        assert asp.home_nodes(g)[0] == 0
        assert asp.migrate_backing(int(g[0]), 1) > 0
        assert asp.home_nodes(g)[0] == 1
        assert asp.home_nodes(g)[0] == 1  # rebuilt map agrees

    def test_fresh_writes_each_call(self):
        asp = self._mixed_asp()
        g = np.arange(8, dtype=np.int64)
        asp.home_nodes(g)
        a = asp.home_nodes(g)
        b = asp.home_nodes(g)
        a[:] = -7  # caller-side mutation must not leak into the cache
        assert not np.array_equal(a, b)
        assert np.array_equal(asp.home_nodes(g), b)
