"""Tests for workload abstractions (cost profile, instance, factory)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import CostProfile, FaultBatch, TlbGroup, Workload, WorkloadInstance
from repro.workloads.regions import PartitionedRegion, SharedRegion

MIB = 1 << 20


def two_regions():
    return [
        PartitionedRegion("p", 2 * MIB, 0.6),
        SharedRegion("s", 4 * MIB, 0.4),
    ]


def make_instance(machine, **kwargs):
    cost = CostProfile(cpu_seconds=0.1, mem_accesses=1e6, dram_accesses=1e5)
    return WorkloadInstance("t", machine, two_regions(), cost, total_epochs=4, **kwargs)


class TestCostProfile:
    def test_valid(self):
        CostProfile(cpu_seconds=0.1, mem_accesses=10, dram_accesses=5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            CostProfile(cpu_seconds=-1, mem_accesses=10, dram_accesses=5)

    def test_dram_exceeds_mem_rejected(self):
        with pytest.raises(ConfigurationError):
            CostProfile(cpu_seconds=0.1, mem_accesses=5, dram_accesses=10)

    def test_bad_mlp_rejected(self):
        with pytest.raises(ConfigurationError):
            CostProfile(cpu_seconds=0.1, mem_accesses=10, dram_accesses=5, mlp=0)


class TestTlbGroup:
    def test_valid(self):
        TlbGroup(0, 100, 0.5, 100, 1, 1)

    def test_bad_extent(self):
        with pytest.raises(ConfigurationError):
            TlbGroup(100, 0, 0.5, 100, 1, 1)

    def test_bad_run_length(self):
        with pytest.raises(ConfigurationError):
            TlbGroup(0, 100, 0.5, 100, 1, 1, run_length=0.5)


class TestFaultBatch:
    def test_merge_and_totals(self):
        a = FaultBatch.zeros(4)
        b = FaultBatch.zeros(4)
        b.faults_4k[1] = 10
        b.faults_2m[2] = 2
        a.merge(b)
        assert a.total == 12
        assert a.faulting_threads() == 2


class TestWorkloadInstance:
    def test_regions_laid_out_disjoint(self, tiny_topo):
        inst = make_instance(tiny_topo)
        r0, r1 = inst.regions
        assert r0.hi <= r1.lo
        assert inst.n_granules >= r1.hi

    def test_regions_chunk_aligned(self, tiny_topo):
        inst = make_instance(tiny_topo)
        for region in inst.regions:
            assert region.lo % 512 == 0

    def test_shares_normalised(self, tiny_topo):
        inst = make_instance(tiny_topo)
        assert sum(inst._norm_shares) == pytest.approx(1.0)

    def test_epoch_stream_length(self, tiny_topo):
        inst = make_instance(tiny_topo)
        g = inst.epoch_stream(0, 0, np.random.default_rng(0), 1000)
        assert len(g) == 1000
        assert np.all(g >= 0)
        assert np.all(g < inst.n_granules)

    def test_epoch_stream_zero_length(self, tiny_topo):
        inst = make_instance(tiny_topo)
        assert len(inst.epoch_stream(0, 0, np.random.default_rng(0), 0)) == 0

    def test_epoch_stream_bad_thread(self, tiny_topo):
        inst = make_instance(tiny_topo)
        with pytest.raises(ConfigurationError):
            inst.epoch_stream(99, 0, np.random.default_rng(0), 10)

    def test_stream_rng_deterministic(self, tiny_topo):
        inst = make_instance(tiny_topo)
        a = inst.epoch_stream(0, 0, inst.stream_rng(0, 0), 100)
        b = inst.epoch_stream(0, 0, inst.stream_rng(0, 0), 100)
        assert np.array_equal(a, b)

    def test_stream_rng_varies_by_epoch(self, tiny_topo):
        inst = make_instance(tiny_topo)
        a = inst.epoch_stream(0, 0, inst.stream_rng(0, 0), 100)
        b = inst.epoch_stream(0, 1, inst.stream_rng(0, 1), 100)
        assert not np.array_equal(a, b)

    def test_tlb_groups_weights_normalised(self, tiny_topo):
        inst = make_instance(tiny_topo)
        groups = inst.tlb_groups(0, 0)
        assert sum(g.weight for g in groups) == pytest.approx(1.0)

    def test_thread_node(self, tiny_topo):
        inst = make_instance(tiny_topo)
        assert inst.thread_node(0) == 0
        assert inst.thread_node(inst.n_threads - 1) == tiny_topo.n_nodes - 1

    def test_region_named(self, tiny_topo):
        inst = make_instance(tiny_topo)
        assert inst.region_named("p").name == "p"
        with pytest.raises(KeyError):
            inst.region_named("nope")

    def test_with_1g_backing_rebinds(self, tiny_topo):
        inst = make_instance(tiny_topo)
        inst_1g = inst.with_1g_backing()
        assert inst_1g.backing_1g
        assert inst_1g.n_granules % (1 << 18) == 0
        for region in inst_1g.regions:
            assert region.lo % (1 << 18) == 0

    def test_invalid_epochs(self, tiny_topo):
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=1, dram_accesses=1)
        with pytest.raises(ConfigurationError):
            WorkloadInstance("t", tiny_topo, two_regions(), cost, total_epochs=0)

    def test_invalid_thread_count(self, tiny_topo):
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=1, dram_accesses=1)
        with pytest.raises(ConfigurationError):
            WorkloadInstance(
                "t", tiny_topo, two_regions(), cost, total_epochs=1, n_threads=99
            )

    def test_no_regions_rejected(self, tiny_topo):
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=1, dram_accesses=1)
        with pytest.raises(ConfigurationError):
            WorkloadInstance("t", tiny_topo, [], cost, total_epochs=1)


class TestWorkloadFactory:
    def test_instantiate(self, tiny_topo):
        wl = Workload("t", "test", lambda m, s, seed: make_instance(m))
        inst = wl.instantiate(tiny_topo)
        assert inst.name == "t"

    def test_bad_scale(self, tiny_topo):
        wl = Workload("t", "test", lambda m, s, seed: make_instance(m))
        with pytest.raises(ConfigurationError):
            wl.instantiate(tiny_topo, scale=0.0)
        with pytest.raises(ConfigurationError):
            wl.instantiate(tiny_topo, scale=2.0)
