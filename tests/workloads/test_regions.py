"""Tests for the region primitives (placement, sampling, TLB geometry)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.vm.layout import GRANULES_PER_2M
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import (
    HotRegion,
    PartitionedRegion,
    SharedRegion,
    StreamRegion,
)

GIB = 1 << 30
MIB = 1 << 20


def make_instance(regions, machine, total_epochs=4, **kwargs):
    cost = CostProfile(cpu_seconds=0.1, mem_accesses=1e6, dram_accesses=1e5)
    return WorkloadInstance(
        "test", machine, regions, cost, total_epochs=total_epochs, **kwargs
    )


def make_asp(instance):
    phys = PhysicalMemory.for_topology(instance.machine)
    return AddressSpace(instance.n_granules, phys)


def premap_all(instance, asp, thp):
    nodes = instance.machine.core_to_node[: instance.n_threads].astype(np.int64)
    batches = []
    for epoch in range(instance.total_epochs):
        batches.append(instance.premap_epoch(epoch, asp, nodes, thp))
    return batches


class TestPartitionedRegion:
    def test_threads_sample_own_blocks(self, tiny_topo):
        region = PartitionedRegion("p", 4 * MIB, 1.0, block_bytes=64 * 1024)
        inst = make_instance([region], tiny_topo)
        rng = np.random.default_rng(0)
        for t in range(inst.n_threads):
            g = region.sample(t, 500, 0, rng)
            owners = region.owner_of_local(g - region.lo)
            assert np.all(owners == t)

    def test_neighbor_share_hits_boundaries(self, tiny_topo):
        region = PartitionedRegion(
            "p", 4 * MIB, 1.0, block_bytes=64 * 1024, neighbor_share=0.5
        )
        inst = make_instance([region], tiny_topo)
        rng = np.random.default_rng(0)
        g = region.sample(0, 2000, 0, rng)
        owners = region.owner_of_local(g - region.lo)
        assert set(np.unique(owners)) > {0}

    def test_contiguous_partitions_are_slices(self, tiny_topo):
        region = PartitionedRegion("p", 4 * MIB, 1.0, contiguous=True)
        inst = make_instance([region], tiny_topo)
        per = region._per_thread_granules
        owners = region.owner_of_local(np.arange(4 * per))
        assert list(np.unique(owners[:per])) == [0]

    def test_interleaved_chunk_owners_cycle(self, tiny_topo):
        # With small blocks and the per-chunk shift, the first-touch
        # owners of consecutive chunks should not degenerate to a
        # single thread.
        region = PartitionedRegion("p", 16 * MIB, 1.0, block_bytes=64 * 1024)
        make_instance([region], tiny_topo)
        chunk_starts = np.arange(0, region.n_granules, GRANULES_PER_2M)
        owners = region.owner_of_local(chunk_starts)
        assert len(np.unique(owners)) > 1

    def test_premap_4k_places_on_owner_nodes(self, tiny_topo):
        region = PartitionedRegion("p", 4 * MIB, 1.0, block_bytes=64 * 1024)
        inst = make_instance([region], tiny_topo)
        asp = make_asp(inst)
        batches = premap_all(inst, asp, thp=False)
        assert batches[0].total > 0
        # Thread 0 (node 0) samples must be local after first touch.
        g = region.sample(0, 200, 0, np.random.default_rng(1))
        assert np.all(asp.home_nodes(g) == 0)

    def test_premap_thp_whole_chunks(self, tiny_topo):
        region = PartitionedRegion("p", 4 * MIB, 1.0)
        inst = make_instance([region], tiny_topo)
        asp = make_asp(inst)
        batches = premap_all(inst, asp, thp=True)
        assert batches[0].faults_2m.sum() == asp.page_counts()[512 * 4096]

    def test_false_sharing_under_thp(self, tiny_topo):
        # Small blocks: a 2MB chunk contains several threads' data, so
        # some threads' accesses become remote under THP.
        region = PartitionedRegion("p", 8 * MIB, 1.0, block_bytes=64 * 1024)
        inst = make_instance([region], tiny_topo)
        asp = make_asp(inst)
        premap_all(inst, asp, thp=True)
        rng = np.random.default_rng(2)
        g = region.sample(0, 2000, 0, rng)
        homes = asp.home_nodes(g)
        assert 0 < np.count_nonzero(homes != 0) < 2000

    def test_tlb_groups_weights_sum_to_share(self, tiny_topo):
        region = PartitionedRegion("p", 4 * MIB, 1.0, neighbor_share=0.2)
        make_instance([region], tiny_topo)
        groups = region.tlb_groups(0, 0, 0.5)
        assert sum(g.weight for g in groups) == pytest.approx(0.5)

    def test_invalid_neighbor_share(self):
        with pytest.raises(ConfigurationError):
            PartitionedRegion("p", MIB, 1.0, neighbor_share=1.0)

    def test_invalid_boundary_fraction(self):
        with pytest.raises(ConfigurationError):
            PartitionedRegion("p", MIB, 1.0, boundary_fraction=0.0)


class TestSharedRegion:
    def test_uniform_sampling_in_range(self, tiny_topo):
        region = SharedRegion("s", 8 * MIB, 1.0)
        make_instance([region], tiny_topo)
        g = region.sample(0, 1000, 0, np.random.default_rng(0))
        assert np.all(g >= region.lo)
        assert np.all(g < region.lo + region._logical)

    def test_zipf_skews_popularity(self, tiny_topo):
        region = SharedRegion("s", 8 * MIB, 1.0, zipf_s=1.2, clustered=True)
        make_instance([region], tiny_topo)
        g = region.sample(0, 20_000, 0, np.random.default_rng(0))
        local = g - region.lo
        # Clustered zipf: the first granules absorb most accesses.
        hot_fraction = np.count_nonzero(local < 64) / len(local)
        assert hot_fraction > 0.3

    def test_unclustered_spreads_hot_ranks(self, tiny_topo):
        region = SharedRegion("s", 8 * MIB, 1.0, zipf_s=1.2, clustered=False)
        make_instance([region], tiny_topo)
        g = region.sample(0, 20_000, 0, np.random.default_rng(0))
        local = g - region.lo
        hot_fraction = np.count_nonzero(local < 64) / len(local)
        assert hot_fraction < 0.15

    def test_master_init_places_on_node0(self, tiny_topo):
        region = SharedRegion("s", 8 * MIB, 1.0, master_init=True)
        inst = make_instance([region], tiny_topo)
        asp = make_asp(inst)
        premap_all(inst, asp, thp=False)
        g = region.sample(1, 500, 0, np.random.default_rng(0))
        assert np.all(asp.home_nodes(g) == 0)

    def test_hashed_striping_spreads_nodes(self, tiny_topo):
        region = SharedRegion("s", 16 * MIB, 1.0, stripe_bytes=64 * 1024)
        inst = make_instance([region], tiny_topo)
        asp = make_asp(inst)
        premap_all(inst, asp, thp=False)
        g = region.sample(0, 4000, 0, np.random.default_rng(0))
        homes = asp.home_nodes(g)
        counts = np.bincount(homes, minlength=2)
        assert counts.min() > 0.3 * counts.max()

    def test_private_consumers_partition_ranks(self, tiny_topo):
        region = SharedRegion("s", 8 * MIB, 1.0, private_consumers=True)
        make_instance([region], tiny_topo)
        g0 = region.sample(0, 3000, 0, np.random.default_rng(0))
        g1 = region.sample(1, 3000, 0, np.random.default_rng(1))
        assert not (set(g0.tolist()) & set(g1.tolist()))

    def test_chunk_header_bias_moves_chunks_to_master(self, tiny_topo):
        region = SharedRegion(
            "s", 32 * MIB, 1.0, stripe_bytes=64 * 1024, chunk_header_bias=1.0
        )
        inst = make_instance([region], tiny_topo)
        asp = make_asp(inst)
        premap_all(inst, asp, thp=True)
        chunk_lo = region.lo // GRANULES_PER_2M
        chunk_hi = region.hi // GRANULES_PER_2M
        nodes = asp.node2m[chunk_lo:chunk_hi]
        # Every chunk follows its master-touched header to node 0.
        assert np.all(nodes == 0)

    def test_chunk_header_bias_harmless_at_4k(self, tiny_topo):
        region = SharedRegion(
            "s", 32 * MIB, 1.0, stripe_bytes=64 * 1024, chunk_header_bias=1.0
        )
        inst = make_instance([region], tiny_topo)
        asp = make_asp(inst)
        premap_all(inst, asp, thp=False)
        g = region.sample(0, 5000, 0, np.random.default_rng(0))
        homes = asp.home_nodes(g)
        counts = np.bincount(homes, minlength=2)
        assert counts.min() > 0.25 * counts.max()

    def test_invalid_zipf(self):
        with pytest.raises(ConfigurationError):
            SharedRegion("s", MIB, 1.0, zipf_s=-1)

    def test_invalid_bias(self):
        with pytest.raises(ConfigurationError):
            SharedRegion("s", MIB, 1.0, chunk_header_bias=2.0)

    def test_tlb_groups_cover_share(self, tiny_topo):
        region = SharedRegion("s", 8 * MIB, 1.0, zipf_s=0.7)
        make_instance([region], tiny_topo)
        groups = region.tlb_groups(0, 0, 1.0)
        assert sum(g.weight for g in groups) == pytest.approx(1.0)
        assert all(g.distinct_2m <= g.distinct_4k for g in groups)


class TestHotRegion:
    def test_small_and_uniform(self, tiny_topo):
        region = HotRegion("h", 6 * MIB, 0.3)
        make_instance([region], tiny_topo)
        assert region.zipf_s == 0.0
        assert region.clustered
        g = region.sample(0, 5000, 0, np.random.default_rng(0))
        # Uniform across exactly 3 chunks.
        chunks = np.unique((g - region.lo) // GRANULES_PER_2M)
        assert len(chunks) == 3


class TestStreamRegion:
    def test_growth_schedule(self, tiny_topo):
        region = StreamRegion("st", 8 * MIB, 1.0, grow_epochs=4)
        make_instance([region], tiny_topo, total_epochs=4)
        grown = [region.grown_granules(e) for e in range(4)]
        assert grown[-1] == region._per_g
        assert all(b >= a for a, b in zip(grown, grown[1:]))

    def test_growth_premaps_incrementally(self, tiny_topo):
        region = StreamRegion("st", 8 * MIB, 1.0, grow_epochs=4)
        inst = make_instance([region], tiny_topo, total_epochs=4)
        asp = make_asp(inst)
        batches = premap_all(inst, asp, thp=False)
        assert all(b.total > 0 for b in batches)

    def test_no_growth_maps_at_epoch0(self, tiny_topo):
        region = StreamRegion("st", 4 * MIB, 1.0, grow_epochs=0)
        inst = make_instance([region], tiny_topo, total_epochs=3)
        asp = make_asp(inst)
        batches = premap_all(inst, asp, thp=True)
        assert batches[0].total > 0
        assert batches[1].total == 0

    def test_samples_stay_in_grown_extent(self, tiny_topo):
        region = StreamRegion("st", 8 * MIB, 1.0, grow_epochs=4)
        inst = make_instance([region], tiny_topo, total_epochs=4)
        asp = make_asp(inst)
        nodes = inst.machine.core_to_node[: inst.n_threads].astype(np.int64)
        inst.premap_epoch(0, asp, nodes, False)
        g = region.sample(0, 1000, 0, np.random.default_rng(0))
        assert np.all(asp.home_nodes(g) >= 0)

    def test_recency_concentrates_on_window(self, tiny_topo):
        region = StreamRegion(
            "st", 8 * MIB, 1.0, grow_epochs=0, window_bytes=MIB, recency=1.0
        )
        make_instance([region], tiny_topo, total_epochs=2)
        g = region.sample(0, 1000, 1, np.random.default_rng(0))
        span = g.max() - g.min()
        assert span <= region.window_granules

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            StreamRegion("st", MIB, 1.0, grow_epochs=-1)
        with pytest.raises(ConfigurationError):
            StreamRegion("st", MIB, 1.0, recency=1.5)


class TestRegionProperties:
    @given(
        seed=st.integers(0, 100),
        n=st.integers(1, 2000),
        epoch=st.integers(0, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_samples_always_in_extent(self, seed, n, epoch):
        import tests.conftest as cf
        import numpy as _np
        from repro.hardware.topology import NumaNode, NumaTopology

        tiny_topo = NumaTopology(
            "tiny",
            [NumaNode(i, 2, 1 << 31) for i in range(2)],
            _np.array([[0, 1], [1, 0]]),
            2e9,
        )
        regions = [
            PartitionedRegion("p", 2 * MIB, 0.5, neighbor_share=0.1),
            SharedRegion("s", 4 * MIB, 0.3, zipf_s=0.8),
            StreamRegion("st", 2 * MIB, 0.2, grow_epochs=3),
        ]
        inst = make_instance(regions, tiny_topo, total_epochs=4)
        rng = np.random.default_rng(seed)
        for region in regions:
            g = region.sample(0, n, epoch, rng)
            assert np.all(g >= region.lo)
            assert np.all(g < region.hi)
