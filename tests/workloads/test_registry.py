"""Tests for the benchmark registry and the benchmark model specs."""

import numpy as np
import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads.registry import (
    AFFECTED_SET,
    FIGURE1_ORDER,
    UNAFFECTED_SET,
    available_workloads,
    get_workload,
)


class TestRegistry:
    def test_figure1_has_19_benchmarks(self):
        assert len(FIGURE1_ORDER) == 19

    def test_affected_set_matches_paper(self):
        assert AFFECTED_SET == [
            "CG.D",
            "LU.B",
            "UA.B",
            "UA.C",
            "MatrixMultiply",
            "wrmem",
            "SSCA.20",
            "SPECjbb",
        ]

    def test_unaffected_set_matches_paper(self):
        assert len(UNAFFECTED_SET) == 11
        assert set(AFFECTED_SET) | set(UNAFFECTED_SET) == set(FIGURE1_ORDER)
        assert not set(AFFECTED_SET) & set(UNAFFECTED_SET)

    def test_streamcluster_available_but_not_figure1(self):
        assert "streamcluster" in available_workloads()
        assert "streamcluster" not in FIGURE1_ORDER

    def test_lookup_case_insensitive(self):
        assert get_workload("cg.d").name == "CG.D"
        assert get_workload("SPECjbb").name == "SPECjbb"

    def test_unknown_raises(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("nope")


class TestAllSpecsInstantiate:
    @pytest.mark.parametrize("name", FIGURE1_ORDER + ["streamcluster"])
    def test_instantiates_on_both_machines(
        self, name, machine_a_topo, machine_b_topo
    ):
        for topo in (machine_a_topo, machine_b_topo):
            inst = get_workload(name).instantiate(topo, scale=0.25, seed=0)
            assert inst.n_threads == topo.n_cores
            assert inst.total_epochs > 0
            # Footprint fits comfortably in the machine's DRAM.
            assert inst.n_granules * 4096 < topo.total_dram_bytes // 2

    @pytest.mark.parametrize("name", FIGURE1_ORDER)
    def test_streams_and_groups_valid(self, name, machine_a_topo):
        inst = get_workload(name).instantiate(machine_a_topo, scale=0.25, seed=0)
        rng = inst.stream_rng(0, 0)
        g = inst.epoch_stream(0, 0, rng, 512)
        assert len(g) == 512
        assert np.all((g >= 0) & (g < inst.n_granules))
        groups = inst.tlb_groups(0, 0)
        assert groups
        assert sum(grp.weight for grp in groups) == pytest.approx(1.0)
        for grp in groups:
            assert grp.distinct_2m <= grp.distinct_4k + 1e-9
            assert grp.run_length >= 1.0

    @pytest.mark.parametrize("name", ["CG.D", "UA.B", "SPECjbb"])
    def test_cost_profiles_scale_with_machine(
        self, name, machine_a_topo, machine_b_topo
    ):
        a = get_workload(name).instantiate(machine_a_topo, 0.25, 0)
        b = get_workload(name).instantiate(machine_b_topo, 0.25, 0)
        # Per-thread DRAM intensity reflects controller capacity per
        # core, which differs between the machines.
        assert a.cost.dram_accesses != b.cost.dram_accesses
