"""Consistency checks for every benchmark model, without simulation.

For each of the 21 workloads: premapping must cover everything the
access streams touch (no stray faults after the allocation schedule
completes), placement must respect physical-memory accounting, and the
declared TLB geometry must stay within the region extents.
"""

import numpy as np
import pytest

from repro.vm.address_space import AddressSpace
from repro.vm.frame_allocator import PhysicalMemory
from repro.workloads.registry import FIGURE1_ORDER, get_workload

ALL_BENCHMARKS = FIGURE1_ORDER + ["streamcluster"]


def materialise(name, machine, thp, epochs=None):
    inst = get_workload(name).instantiate(machine, scale=0.25, seed=0)
    phys = PhysicalMemory.for_topology(machine)
    asp = AddressSpace(inst.n_granules, phys)
    nodes = machine.core_to_node[: inst.n_threads].astype(np.int64)
    n_epochs = epochs if epochs is not None else inst.total_epochs
    for epoch in range(n_epochs):
        inst.premap_epoch(epoch, asp, nodes, thp)
    return inst, asp


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestSpecConsistency:
    def test_streams_only_touch_premapped_memory(self, name, machine_a_topo):
        inst, asp = materialise(name, machine_a_topo, thp=True)
        for epoch in (0, inst.total_epochs - 1):
            for thread in (0, inst.n_threads - 1):
                g = inst.epoch_stream(
                    thread, epoch, inst.stream_rng(thread, epoch), 512
                )
                homes = asp.home_nodes(g)
                assert np.all(homes >= 0), (
                    f"{name}: epoch {epoch} thread {thread} touches"
                    " unmapped memory after full premap"
                )

    def test_premap_accounting_consistent(self, name, machine_a_topo):
        inst, asp = materialise(name, machine_a_topo, thp=True)
        asp.check_invariants()
        assert asp.phys.total_used_bytes == asp.mapped_bytes()

    def test_premap_4k_and_thp_cover_same_extent(self, name, machine_a_topo):
        _, asp_4k = materialise(name, machine_a_topo, thp=False)
        _, asp_2m = materialise(name, machine_a_topo, thp=True)
        assert asp_4k.mapped_bytes() == asp_2m.mapped_bytes()

    def test_tlb_groups_within_extents(self, name, machine_a_topo):
        inst, _ = materialise(name, machine_a_topo, thp=True, epochs=1)
        for thread in (0, inst.n_threads // 2):
            for group in inst.tlb_groups(thread, 0):
                assert 0 <= group.lo <= group.hi <= inst.n_granules
                assert group.weight >= 0

    def test_placement_uses_multiple_nodes(self, name, machine_a_topo):
        _, asp = materialise(name, machine_a_topo, thp=False)
        per_node = asp.bytes_per_node()
        # First-touch placement must not put literally everything on
        # one node unless the workload is master-initialised; even
        # those have per-thread private regions elsewhere.
        assert np.count_nonzero(per_node) >= 2
