"""Tests for the epoch-batched stream banks.

The contract under test is *bit-identity*: a banked run must be
indistinguishable from the inline per-thread generation it replaced —
same granule streams, same write masks, same post-generation RNG
states (the IBS sampler continues those generators), and the same
access-tracker state from the pre-aggregated columns.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro._util import rng_for
from repro.experiments.runner import RunSettings, clear_cache, execute_run
from repro.sim.tracker import AccessTracker
from repro.vm.layout import SHIFT_1G, SHIFT_2M
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import (
    HotRegion,
    PartitionedRegion,
    SharedRegion,
    StreamRegion,
)
from repro.workloads.streambank import (
    STREAM_BANK_ENV,
    STREAM_CACHE_ENV,
    STREAM_PREFETCH_ENV,
    StreamBank,
    bank_fingerprint,
    clear_stream_banks,
    get_stream_bank,
    stream_bank_enabled,
    stream_prefetch_enabled,
)
from repro.workloads.trace import TraceData, TraceRecorder, TraceWorkloadInstance

MIB = 1 << 20
LENGTH = 192
SIM_SEED = 0

#: One factory per builtin region type (plus a mixed composite).  The
#: factories build fresh region objects each call because binding to an
#: instance mutates them.
REGION_FACTORIES = {
    "partitioned": lambda: [
        PartitionedRegion("p", 4 * MIB, 1.0, block_bytes=64 * 1024)
    ],
    "shared": lambda: [
        SharedRegion("s", 8 * MIB, 1.0, zipf_s=1.1, clustered=False)
    ],
    "hot": lambda: [HotRegion("h", 2 * MIB, 1.0)],
    "stream": lambda: [
        StreamRegion("st", bytes_per_thread=4 * MIB, access_share=1.0,
                     grow_epochs=3)
    ],
    "mixed": lambda: [
        PartitionedRegion("p", 4 * MIB, 0.5, block_bytes=64 * 1024),
        SharedRegion("s", 4 * MIB, 0.3, zipf_s=0.8),
        StreamRegion("st", bytes_per_thread=2 * MIB, access_share=0.2,
                     grow_epochs=2),
    ],
}


def make_instance(regions, machine, total_epochs=4, **kwargs):
    cost = CostProfile(cpu_seconds=0.1, mem_accesses=1e6, dram_accesses=1e5)
    return WorkloadInstance(
        "test", machine, regions, cost, total_epochs=total_epochs, **kwargs
    )


def sequential_rows(instance, epoch, length=LENGTH, sim_seed=SIM_SEED):
    """The inline path's (granules, writes, rng state) for every thread."""
    rows = []
    for t in range(instance.n_threads):
        rng = rng_for(sim_seed, instance.seed, instance.name, "stream", t, epoch)
        granules, writes = instance.epoch_stream_with_writes(t, epoch, rng, length)
        rows.append((granules, writes, rng.bit_generator.state))
    return rows


def assert_bank_matches_sequential(bank, instance, epoch, length=LENGTH):
    streams, writes, sizes = bank.epoch_arrays(epoch)
    ibs = bank.ibs_rngs(epoch)
    for t, (ref_g, ref_w, ref_state) in enumerate(
        sequential_rows(instance, epoch, length)
    ):
        n = int(sizes[t])
        assert n == ref_g.size
        np.testing.assert_array_equal(streams[t, :n], ref_g)
        np.testing.assert_array_equal(writes[t, :n], ref_w)
        # Rows past the stream size stay zeroed (epoch_stream_into
        # relies on pre-zeroed write rows).
        assert not writes[t, n:].any()
        assert ibs[t].bit_generator.state == ref_state


@pytest.fixture(autouse=True)
def _fresh_banks(monkeypatch):
    # Prefetch off by default so fills (and block persistence) happen
    # synchronously in the consuming thread; the pipelined-fill tests
    # below opt back in explicitly.
    monkeypatch.setenv(STREAM_PREFETCH_ENV, "0")
    clear_stream_banks()
    yield
    clear_stream_banks()


class TestBatchedEquivalence:
    @pytest.mark.parametrize("kind", sorted(REGION_FACTORIES))
    def test_matches_sequential(self, kind, tiny_topo):
        inst = make_instance(REGION_FACTORIES[kind](), tiny_topo)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        for epoch in (0, 1, 3):
            assert_bank_matches_sequential(bank, inst, epoch)

    def test_write_fraction_zero(self, tiny_topo):
        """wf=0 regions draw no write randomness on either path."""
        inst = make_instance(
            [SharedRegion("s", 4 * MIB, 1.0, write_fraction=0.0)], tiny_topo
        )
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        for epoch in (0, 2):
            assert_bank_matches_sequential(bank, inst, epoch)
        _, writes, sizes = bank.epoch_arrays(0)
        assert not writes.any()
        assert (sizes == LENGTH).all()

    def test_trace_replay_matches_sequential(self, tiny_topo):
        """Trace instances (no epoch_stream_into) use the fallback."""
        inst = make_instance(REGION_FACTORIES["mixed"](), tiny_topo,
                             total_epochs=3)
        trace = TraceRecorder().record(inst, stream_length=96)
        replay = TraceWorkloadInstance("replayed", tiny_topo, trace)
        bank = StreamBank(replay, SIM_SEED, 64)
        for epoch in range(replay.total_epochs):
            assert_bank_matches_sequential(bank, replay, epoch, length=64)

    def test_empty_streams(self, tiny_topo):
        """An epoch nobody touches yields empty rows and empty columns."""
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=1e6, dram_accesses=1e5)
        trace = TraceData(
            n_threads=2,
            n_granules=64,
            total_epochs=2,
            thread=np.array([0, 0, 1], dtype=np.int64),
            epoch=np.zeros(3, dtype=np.int64),
            granule=np.array([1, 2, 3], dtype=np.int64),
            is_write=np.array([False, True, False]),
            cost=cost,
            tlb_run_length=8.0,
        )
        replay = TraceWorkloadInstance("sparse", tiny_topo, trace)
        bank = StreamBank(replay, SIM_SEED, 16)
        _, writes, sizes = bank.epoch_arrays(1)
        assert (sizes == 0).all()
        assert not writes.any()
        for ids, first, multi in bank.sharing_columns(1):
            assert ids.size == first.size == multi.size == 0
        tracker = AccessTracker(64)
        tracker.merge_epoch_sharing(bank.sharing_packed(1))
        assert not tracker._shared_4k.any()
        assert (tracker._first_4k == -1).all()


class TestTrackerColumns:
    def test_columns_match_numpy_unique(self, tiny_topo):
        inst = make_instance(REGION_FACTORIES["mixed"](), tiny_topo)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        streams, _, sizes = bank.epoch_arrays(0)
        for t in range(inst.n_threads):
            unique, counts, u2, u1 = bank.tracker_columns(0, t)
            ref_u, ref_c = np.unique(streams[t, : int(sizes[t])],
                                     return_counts=True)
            np.testing.assert_array_equal(unique, ref_u)
            np.testing.assert_array_equal(counts, ref_c)
            np.testing.assert_array_equal(u2, np.unique(ref_u >> SHIFT_2M))
            np.testing.assert_array_equal(u1, np.unique(ref_u >> SHIFT_1G))

    def test_merge_matches_sequential_update(self, tiny_topo):
        """Bank columns reproduce the tracker state of per-thread update().

        Sequential reference: ``update(t, ...)`` per thread in ascending
        order, epoch by epoch — exactly the inline engine loop.
        """
        inst = make_instance(REGION_FACTORIES["mixed"](), tiny_topo)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        seq = AccessTracker(inst.n_granules)
        banked = AccessTracker(inst.n_granules)
        for epoch in range(inst.total_epochs):
            streams, _, sizes = bank.epoch_arrays(epoch)
            for t in range(inst.n_threads):
                weight = 0.5 + 0.25 * t  # distinct per-thread weights
                seq.update(t, streams[t, : int(sizes[t])], weight)
                unique, counts, _, _ = bank.tracker_columns(epoch, t)
                banked.add_weights(unique, counts, weight)
            banked.merge_epoch_sharing(bank.sharing_packed(epoch))
        np.testing.assert_array_equal(banked.weight, seq.weight)
        for level in ("4k", "2m", "1g"):
            np.testing.assert_array_equal(
                getattr(banked, f"_first_{level}"),
                getattr(seq, f"_first_{level}"),
            )
            np.testing.assert_array_equal(
                getattr(banked, f"_shared_{level}"),
                getattr(seq, f"_shared_{level}"),
            )


class TestBankMemoization:
    def test_fingerprint_stability(self, tiny_topo):
        a = make_instance(REGION_FACTORIES["shared"](), tiny_topo)
        b = make_instance(REGION_FACTORIES["shared"](), tiny_topo)
        assert bank_fingerprint(a, 0, LENGTH) == bank_fingerprint(b, 0, LENGTH)
        assert bank_fingerprint(a, 1, LENGTH) != bank_fingerprint(a, 0, LENGTH)
        assert bank_fingerprint(a, 0, 64) != bank_fingerprint(a, 0, LENGTH)
        c = make_instance(REGION_FACTORIES["shared"](), tiny_topo, seed=7)
        assert bank_fingerprint(c, 0, LENGTH) != bank_fingerprint(a, 0, LENGTH)

    def test_equal_instances_share_a_bank(self, tiny_topo):
        a = make_instance(REGION_FACTORIES["partitioned"](), tiny_topo)
        b = make_instance(REGION_FACTORIES["partitioned"](), tiny_topo)
        assert get_stream_bank(a, 0, LENGTH) is get_stream_bank(b, 0, LENGTH)

    def test_trace_banks_are_per_object(self, tiny_topo):
        inst = make_instance(REGION_FACTORIES["shared"](), tiny_topo,
                             total_epochs=2)
        trace = TraceRecorder().record(inst, stream_length=64)
        r1 = TraceWorkloadInstance("t", tiny_topo, trace)
        r2 = TraceWorkloadInstance("t", tiny_topo, trace)
        assert bank_fingerprint(r1, 0, LENGTH) is None
        assert get_stream_bank(r1, 0, LENGTH) is get_stream_bank(r1, 0, LENGTH)
        assert get_stream_bank(r1, 0, LENGTH) is not get_stream_bank(r2, 0, LENGTH)

    def test_rebound_instance_invalidates_bank(self, tiny_topo):
        """with_1g_backing re-binds the shared region objects; the stale
        bank must not answer for the original fingerprint afterwards."""
        inst = make_instance(REGION_FACTORIES["stream"](), tiny_topo)
        stale = get_stream_bank(inst, SIM_SEED, LENGTH)
        stale.epoch_arrays(0)
        inst.with_1g_backing()  # mutates the regions stale.instance holds
        fresh_inst = make_instance(REGION_FACTORIES["stream"](), tiny_topo)
        fresh = get_stream_bank(fresh_inst, SIM_SEED, LENGTH)
        assert fresh is not stale
        assert_bank_matches_sequential(fresh, fresh_inst, 0)


class TestDiskStore:
    def test_round_trip_memmapped(self, tiny_topo, tmp_path, monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, str(tmp_path))
        inst = make_instance(REGION_FACTORIES["mixed"](), tiny_topo,
                             total_epochs=3)
        bank = get_stream_bank(inst, SIM_SEED, LENGTH)
        # Consuming every epoch completes the block and persists it.
        for epoch in range(inst.total_epochs):
            bank.epoch_arrays(epoch)
        store_dir = os.path.join(str(tmp_path), bank.fingerprint)
        assert os.path.exists(os.path.join(store_dir, "b0.ok"))

        clear_stream_banks()
        inst2 = make_instance(REGION_FACTORIES["mixed"](), tiny_topo,
                              total_epochs=3)
        bank2 = get_stream_bank(inst2, SIM_SEED, LENGTH)
        streams2, _, _ = bank2.epoch_arrays(0)
        assert isinstance(streams2, np.memmap)  # loaded, not regenerated
        for epoch in range(inst2.total_epochs):
            assert_bank_matches_sequential(bank2, inst2, epoch)

    def test_incomplete_store_regenerates(self, tiny_topo, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, str(tmp_path))
        inst = make_instance(REGION_FACTORIES["shared"](), tiny_topo,
                             total_epochs=2)
        bank = get_stream_bank(inst, SIM_SEED, LENGTH)
        for epoch in range(inst.total_epochs):
            bank.epoch_arrays(epoch)
        os.unlink(os.path.join(str(tmp_path), bank.fingerprint, "b0.ok"))

        clear_stream_banks()
        inst2 = make_instance(REGION_FACTORIES["shared"](), tiny_topo,
                              total_epochs=2)
        bank2 = get_stream_bank(inst2, SIM_SEED, LENGTH)
        streams2, _, _ = bank2.epoch_arrays(0)
        assert not isinstance(streams2, np.memmap)
        for epoch in range(inst2.total_epochs):
            assert_bank_matches_sequential(bank2, inst2, epoch)


class TestPersistDeferral:
    """Completed blocks are written outside the bank lock (R108 fix)."""

    def test_persist_runs_with_the_lock_released(self, tiny_topo, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(STREAM_CACHE_ENV, str(tmp_path))
        inst = make_instance(REGION_FACTORIES["shared"](), tiny_topo,
                             total_epochs=2)
        bank = get_stream_bank(inst, SIM_SEED, LENGTH)
        orig = bank._persist
        lock_states = []

        def spy(block):
            lock_states.append(bank._lock.locked())
            orig(block)

        monkeypatch.setattr(bank, "_persist", spy)
        for epoch in range(inst.total_epochs):
            bank.epoch_arrays(epoch)
        # Persistence happened, and never inside the critical section.
        assert lock_states and not any(lock_states)
        assert os.path.exists(
            os.path.join(str(tmp_path), bank.fingerprint, "b0.ok")
        )

    def test_every_accessor_drains_the_queue(self, tiny_topo, tmp_path,
                                             monkeypatch):
        """epoch_arrays, ibs_rngs and tracker_columns all leave no block
        stranded in the pending queue."""
        monkeypatch.setenv(STREAM_CACHE_ENV, str(tmp_path))
        accessors = {
            "epoch_arrays": lambda bank, epoch: bank.epoch_arrays(epoch),
            "ibs_rngs": lambda bank, epoch: bank.ibs_rngs(epoch),
            "tracker_columns": lambda bank, epoch: bank.tracker_columns(
                epoch, 0
            ),
        }
        for name, accessor in accessors.items():
            clear_stream_banks()
            inst = make_instance(REGION_FACTORIES["shared"](), tiny_topo,
                                 total_epochs=2)
            bank = get_stream_bank(inst, SIM_SEED, LENGTH)
            for epoch in range(inst.total_epochs):
                accessor(bank, epoch)
                assert bank._pending_persist == [], name
            assert os.path.exists(
                os.path.join(str(tmp_path), bank.fingerprint, "b0.ok")
            ), name


def assert_fused_matches_update(bank, instance, epochs):
    """Property: add_epoch over the fused COO == the sequential
    per-thread update() loop, bit for bit, including sharing state.

    The reference recomputes the engine's per-thread scale
    (``dram_accesses / stream_size``) exactly as ``_run_epoch`` does.
    """
    seq = AccessTracker(instance.n_granules)
    fused = AccessTracker(instance.n_granules)
    dram = instance.cost.dram_accesses
    for epoch in epochs:
        streams, _, sizes = bank.epoch_arrays(epoch)
        scale = np.zeros(bank.n_threads)
        active = sizes > 0
        scale[active] = dram / sizes[active]
        for t in range(bank.n_threads):
            n = int(sizes[t])
            seq.update(t, streams[t, :n], float(scale[t]))
        ids, offsets, counts, scaled = bank.epoch_tracker(epoch)
        assert offsets.shape == (bank.n_threads + 1,)
        assert int(offsets[-1]) == ids.size == counts.size == scaled.size
        fused.add_epoch(ids, scaled)
        fused.merge_epoch_sharing(bank.sharing_packed(epoch))
    np.testing.assert_array_equal(fused.weight, seq.weight)
    for level in ("4k", "2m", "1g"):
        np.testing.assert_array_equal(
            getattr(fused, f"_first_{level}"), getattr(seq, f"_first_{level}")
        )
        np.testing.assert_array_equal(
            getattr(fused, f"_shared_{level}"), getattr(seq, f"_shared_{level}")
        )


class TestFusedEpochAggregation:
    """Property-style equivalence: the fused per-epoch COO path
    (``epoch_tracker`` + ``add_epoch`` + ``sharing_packed``) must
    reproduce the sequential per-thread ``update`` loop exactly."""

    @pytest.mark.parametrize("kind", sorted(REGION_FACTORIES))
    def test_every_region_kind(self, kind, tiny_topo):
        inst = make_instance(REGION_FACTORIES[kind](), tiny_topo)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        assert_fused_matches_update(bank, inst, range(inst.total_epochs))

    def test_empty_streams(self, tiny_topo):
        """Epochs nobody touches contribute empty COO segments."""
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=1e6, dram_accesses=1e5)
        trace = TraceData(
            n_threads=2,
            n_granules=64,
            total_epochs=3,
            thread=np.array([0, 0, 1], dtype=np.int64),
            epoch=np.array([0, 0, 2], dtype=np.int64),
            granule=np.array([1, 2, 3], dtype=np.int64),
            is_write=np.array([False, True, False]),
            cost=cost,
            tlb_run_length=8.0,
        )
        replay = TraceWorkloadInstance("sparse", tiny_topo, trace)
        bank = StreamBank(replay, SIM_SEED, 16)
        ids, offsets, counts, scaled = bank.epoch_tracker(1)
        assert ids.size == counts.size == scaled.size == 0
        assert (offsets == 0).all()
        assert_fused_matches_update(bank, replay, range(3))

    def test_single_thread_epochs(self):
        """A one-core machine produces a single COO segment."""
        from repro.hardware.topology import NumaNode, NumaTopology

        GIB = 1 << 30
        solo = NumaTopology(
            name="solo",
            nodes=[NumaNode(node_id=0, n_cores=1, dram_bytes=2 * GIB)],
            hop_matrix=np.array([[0]]),
            cpu_freq_hz=2e9,
        )
        inst = make_instance(REGION_FACTORIES["mixed"](), solo)
        assert inst.n_threads == 1
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        ids, offsets, counts, _ = bank.epoch_tracker(0)
        assert offsets.shape == (2,)
        np.testing.assert_array_equal(
            ids, np.unique(bank.epoch_arrays(0)[0][0])
        )
        assert_fused_matches_update(bank, inst, range(inst.total_epochs))

    def test_write_fraction_zero(self, tiny_topo):
        inst = make_instance(
            [SharedRegion("s", 4 * MIB, 1.0, write_fraction=0.0)], tiny_topo
        )
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        assert_fused_matches_update(bank, inst, range(inst.total_epochs))

    def test_max_thread_id_edge(self, tiny_topo):
        """Only the highest thread id active: its segment must land at
        the COO tail and own the sharing ``first`` entries."""
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=1e6, dram_accesses=1e5)
        last = 3  # tiny_topo has 4 cores -> thread ids 0..3
        trace = TraceData(
            n_threads=4,
            n_granules=64,
            total_epochs=2,
            thread=np.full(5, last, dtype=np.int64),
            epoch=np.zeros(5, dtype=np.int64),
            granule=np.array([7, 7, 9, 11, 9], dtype=np.int64),
            is_write=np.zeros(5, dtype=bool),
            cost=cost,
            tlb_run_length=8.0,
        )
        replay = TraceWorkloadInstance("tail", tiny_topo, trace)
        bank = StreamBank(replay, SIM_SEED, 16)
        ids, offsets, counts, _ = bank.epoch_tracker(0)
        assert (offsets[: last + 1] == 0).all()
        np.testing.assert_array_equal(ids, [7, 9, 11])
        np.testing.assert_array_equal(counts, [2, 2, 1])
        p_ids, p_first, _, _ = bank.sharing_packed(0)
        assert (p_first == last).all()
        assert_fused_matches_update(bank, replay, range(2))

    def test_ragged_and_full_paths_agree(self, tiny_topo):
        """The vectorized row-sort aggregation (full rows) equals the
        per-thread np.unique fallback on the same data."""
        inst = make_instance(REGION_FACTORIES["mixed"](), tiny_topo)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        block, i = bank._ensure_row(2)
        fast = bank._aggregate_tracker(block, i)
        forced = bank.length
        try:
            bank.length = -1  # any mismatch forces the ragged path
            slow = bank._aggregate_tracker(block, i)
        finally:
            bank.length = forced
        for a, b in zip(fast, slow):
            np.testing.assert_array_equal(a, b)


class TestPipelinedFill:
    """Lazy, claimed, background-overlapped fills must be invisible:
    every row bit-identical to the serial upfront fill."""

    def _reference_rows(self, kind, tiny_topo, total_epochs):
        inst = make_instance(REGION_FACTORIES[kind](), tiny_topo,
                             total_epochs=total_epochs)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        rows = []
        for epoch in range(total_epochs):
            streams, writes, sizes = bank.epoch_arrays(epoch)
            rows.append(
                (
                    streams.copy(),
                    writes.copy(),
                    sizes.copy(),
                    bank.epoch_tracker(epoch),
                    bank.sharing_packed(epoch),
                    [r.bit_generator.state for r in bank.ibs_rngs(epoch)],
                )
            )
        return rows

    @pytest.mark.parametrize("kind", sorted(REGION_FACTORIES))
    @pytest.mark.parametrize("consumers", [1, 2])
    def test_prefill_bit_identical(self, kind, consumers, tiny_topo,
                                   monkeypatch):
        """Background prefill (serial and two-shard consumption) vs
        the upfront fill, for every builtin region kind."""
        total = 6
        reference = self._reference_rows(kind, tiny_topo, total)

        monkeypatch.setenv(STREAM_PREFETCH_ENV, "1")
        inst = make_instance(REGION_FACTORIES[kind](), tiny_topo,
                             total_epochs=total)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        errors = []

        def consume(order):
            try:
                for epoch in order:
                    bank.epoch_arrays(epoch)
                    bank.epoch_tracker(epoch)
                    bank.sharing_packed(epoch)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        if consumers == 1:
            consume(range(total))
        else:
            # Two shards walking the bank from opposite ends exercises
            # the per-row claim protocol from both directions while
            # the prefill worker races them.
            workers = [
                threading.Thread(target=consume, args=(range(total),)),
                threading.Thread(
                    target=consume, args=(list(reversed(range(total))),)
                ),
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=30)
            assert not any(w.is_alive() for w in workers), "shard deadlock"
        assert not errors
        for epoch, (streams, writes, sizes, tracker, sharing,
                    states) in enumerate(reference):
            got_s, got_w, got_z = bank.epoch_arrays(epoch)
            np.testing.assert_array_equal(got_s, streams)
            np.testing.assert_array_equal(got_w, writes)
            np.testing.assert_array_equal(got_z, sizes)
            for a, b in zip(bank.epoch_tracker(epoch), tracker):
                np.testing.assert_array_equal(a, b)
            for a, b in zip(bank.sharing_packed(epoch), sharing):
                np.testing.assert_array_equal(a, b)
            got_states = [
                r.bit_generator.state for r in bank.ibs_rngs(epoch)
            ]
            assert got_states == states

    def test_worker_fills_ahead_of_consumption(self, tiny_topo, monkeypatch):
        """Touching epoch 0 alone eventually materializes the whole
        lookahead window in the background."""
        monkeypatch.setenv(STREAM_PREFETCH_ENV, "1")
        inst = make_instance(REGION_FACTORIES["shared"](), tiny_topo,
                             total_epochs=6)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        bank.epoch_arrays(0)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            with bank._lock:
                block = bank._blocks.get(0)
                done = block is not None and bool(block.filled.all())
            if done:
                break
            time.sleep(0.005)
        assert done, "prefill worker never completed the block"
        for epoch in range(6):
            assert_bank_matches_sequential(bank, inst, epoch)

    def test_prefetch_disabled_stays_lazy(self, tiny_topo):
        """With REPRO_STREAM_PREFETCH=0 (fixture default) only the
        consumed row fills."""
        inst = make_instance(REGION_FACTORIES["shared"](), tiny_topo,
                             total_epochs=6)
        bank = StreamBank(inst, SIM_SEED, LENGTH)
        bank.epoch_arrays(0)
        with bank._lock:
            block = bank._blocks[0]
            assert bool(block.filled[0])
            assert not block.filled[1:].any()

    def test_prefetch_auto_follows_core_count(self, monkeypatch):
        """Unset env means auto: a worker needs a spare core to help;
        on one core it only contends with the consuming simulation."""
        monkeypatch.delenv(STREAM_PREFETCH_ENV, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert stream_prefetch_enabled()
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert not stream_prefetch_enabled()
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert not stream_prefetch_enabled()
        # Explicit values win in both directions.
        monkeypatch.setenv(STREAM_PREFETCH_ENV, "1")
        assert stream_prefetch_enabled()
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.setenv(STREAM_PREFETCH_ENV, "0")
        assert not stream_prefetch_enabled()


class TestEngineEquivalence:
    def test_bank_toggle_is_bit_identical(self, monkeypatch):
        """A banked engine run equals the inline run, metric for metric."""
        settings = RunSettings.quick()

        monkeypatch.setenv(STREAM_BANK_ENV, "0")
        assert not stream_bank_enabled()
        clear_cache()
        inline = execute_run("Kmeans", "A", "thp", settings, False)

        monkeypatch.delenv(STREAM_BANK_ENV)
        assert stream_bank_enabled()
        clear_stream_banks()
        clear_cache()
        banked = execute_run("Kmeans", "A", "thp", settings, False)

        assert banked.runtime_s == inline.runtime_s
        assert banked.epoch_times_s == inline.epoch_times_s
        assert banked.hot_stats == inline.hot_stats
        for counter in (
            "tlb_misses",
            "page_faults_4k",
            "page_faults_2m",
            "time_dram_s",
            "time_walk_s",
            "time_ibs_s",
        ):
            assert banked.bank.total(counter) == inline.bank.total(counter)
        assert float(
            sum(e.traffic.sum() for e in banked.bank.epochs)
        ) == float(sum(e.traffic.sum() for e in inline.bank.epochs))
