"""Tests for trace recording, persistence and replay."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.policy import LinuxPolicy
from repro.workloads.base import CostProfile, WorkloadInstance
from repro.workloads.regions import PartitionedRegion, SharedRegion
from repro.workloads.trace import TraceData, TraceRecorder, TraceWorkloadInstance

MIB = 1 << 20


def make_instance(machine, epochs=3):
    cost = CostProfile(cpu_seconds=0.05, mem_accesses=1e6, dram_accesses=1e5)
    return WorkloadInstance(
        "toy",
        machine,
        [
            PartitionedRegion("p", 2 * MIB, 0.6),
            SharedRegion("s", 4 * MIB, 0.4, write_fraction=0.3),
        ],
        cost,
        total_epochs=epochs,
    )


def make_trace(machine, epochs=3, stream_length=256):
    inst = make_instance(machine, epochs)
    return TraceRecorder().record(inst, stream_length=stream_length), inst


class TestTraceData:
    def test_record_shape(self, tiny_topo):
        trace, inst = make_trace(tiny_topo)
        assert trace.n_threads == inst.n_threads
        assert trace.total_epochs == 3
        assert len(trace) == 3 * inst.n_threads * 256
        assert trace.is_write.any()
        assert not trace.is_write.all()

    def test_validation_granule_range(self):
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=10, dram_accesses=5)
        with pytest.raises(ConfigurationError):
            TraceData(
                n_threads=1,
                n_granules=4,
                total_epochs=1,
                thread=np.array([0]),
                epoch=np.array([0]),
                granule=np.array([9]),
                is_write=np.array([False]),
                cost=cost,
            )

    def test_validation_array_lengths(self):
        cost = CostProfile(cpu_seconds=0.1, mem_accesses=10, dram_accesses=5)
        with pytest.raises(ConfigurationError):
            TraceData(
                n_threads=1,
                n_granules=4,
                total_epochs=1,
                thread=np.array([0, 0]),
                epoch=np.array([0]),
                granule=np.array([1]),
                is_write=np.array([False]),
                cost=cost,
            )

    def test_save_load_roundtrip(self, tiny_topo, tmp_path):
        trace, _ = make_trace(tiny_topo)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = TraceData.load(path)
        assert loaded.n_threads == trace.n_threads
        assert np.array_equal(loaded.granule, trace.granule)
        assert np.array_equal(loaded.is_write, trace.is_write)
        assert loaded.cost.dram_accesses == trace.cost.dram_accesses
        assert loaded.tlb_run_length == trace.tlb_run_length


class TestRecorder:
    def test_deterministic(self, tiny_topo):
        a, _ = make_trace(tiny_topo)
        b, _ = make_trace(tiny_topo)
        assert np.array_equal(a.granule, b.granule)

    def test_bad_stream_length(self, tiny_topo):
        inst = make_instance(tiny_topo)
        with pytest.raises(ConfigurationError):
            TraceRecorder().record(inst, stream_length=0)


class TestReplay:
    def test_replay_runs(self, tiny_topo):
        trace, _ = make_trace(tiny_topo)
        replay = TraceWorkloadInstance("toy-replay", tiny_topo, trace)
        result = Simulation(
            tiny_topo, replay, LinuxPolicy(False), SimConfig(stream_length=256)
        ).run()
        assert result.runtime_s > 0
        assert result.bank.total("l2_data_misses") > 0

    def test_replay_matches_live_access_volume(self, tiny_topo):
        trace, inst = make_trace(tiny_topo)
        live = Simulation(
            tiny_topo, inst, LinuxPolicy(False), SimConfig(stream_length=256)
        ).run()
        replay = TraceWorkloadInstance("toy-replay", tiny_topo, trace)
        replayed = Simulation(
            tiny_topo, replay, LinuxPolicy(False), SimConfig(stream_length=256)
        ).run()
        # The replay reproduces the recorded access *pattern*: identical
        # DRAM request volume and a comparable mapped footprint.
        # (Placement may differ: the replay first-touches in stream
        # order rather than via the workload's allocation sweep.)
        assert replayed.bank.total("l2_data_misses") == pytest.approx(
            live.bank.total("l2_data_misses")
        )
        live_mapped = sum(live.final_page_counts.values())
        replay_mapped = sum(replayed.final_page_counts.values())
        assert replay_mapped > 0
        assert replay_mapped <= live_mapped * 1.05

    def test_replay_policies_differ(self, tiny_topo):
        trace, _ = make_trace(tiny_topo, epochs=4)
        r4 = Simulation(
            tiny_topo,
            TraceWorkloadInstance("t", tiny_topo, trace),
            LinuxPolicy(False),
            SimConfig(stream_length=256),
        ).run()
        r2 = Simulation(
            tiny_topo,
            TraceWorkloadInstance("t", tiny_topo, trace),
            LinuxPolicy(True),
            SimConfig(stream_length=256),
        ).run()
        assert r4.final_page_counts != r2.final_page_counts

    def test_subsampling_long_epochs(self, tiny_topo):
        trace, _ = make_trace(tiny_topo, stream_length=512)
        replay = TraceWorkloadInstance("t", tiny_topo, trace)
        g, w = replay.epoch_stream_with_writes(0, 0, replay.stream_rng(0, 0), 128)
        assert len(g) == 128
        assert len(w) == 128

    def test_missing_epoch_is_empty(self, tiny_topo):
        trace, _ = make_trace(tiny_topo)
        replay = TraceWorkloadInstance("t", tiny_topo, trace)
        g = replay.epoch_stream(0, trace.total_epochs - 1, replay.stream_rng(0, 0), 64)
        assert len(g) > 0

    def test_too_many_threads_rejected(self, tiny_topo, machine_b_topo):
        trace, _ = make_trace(machine_b_topo, epochs=1, stream_length=8)
        with pytest.raises(ConfigurationError):
            TraceWorkloadInstance("t", tiny_topo, trace)

    def test_tlb_groups_valid(self, tiny_topo):
        trace, _ = make_trace(tiny_topo)
        replay = TraceWorkloadInstance("t", tiny_topo, trace)
        groups = replay.tlb_groups(0, 0)
        assert len(groups) == 1
        assert groups[0].distinct_4k >= 1
